//! Miss-status holding registers with secondary-miss merging.

use std::collections::HashMap;

/// Outcome of trying to allocate an MSHR for a miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrOutcome {
    /// First miss on this block: a new entry was allocated; the caller
    /// must issue the fill request downstream.
    Primary,
    /// The block already has an outstanding fill: the transaction was
    /// merged; no new downstream request.
    Secondary,
    /// All MSHRs are busy: the miss must be retried (structural stall).
    Full,
}

/// A file of miss-status holding registers: at most `capacity` distinct
/// blocks may have fills in flight, with unlimited merging of secondary
/// misses per block (Table 2: 32 MSHRs per L1/L2).
#[derive(Debug, Clone)]
pub struct MshrFile {
    capacity: usize,
    /// block → transaction tags waiting for the fill.
    entries: HashMap<u64, Vec<u64>>,
}

impl MshrFile {
    /// Creates a file with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "an MSHR file needs at least one entry");
        MshrFile { capacity, entries: HashMap::new() }
    }

    /// Entries currently in flight.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.entries.len()
    }

    /// True when no fill can be started for a new block.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Registers a miss on `block` by transaction `txn`.
    pub fn allocate(&mut self, block: u64, txn: u64) -> MshrOutcome {
        if let Some(waiters) = self.entries.get_mut(&block) {
            waiters.push(txn);
            return MshrOutcome::Secondary;
        }
        if self.entries.len() >= self.capacity {
            return MshrOutcome::Full;
        }
        self.entries.insert(block, vec![txn]);
        MshrOutcome::Primary
    }

    /// Completes the fill of `block`, returning every waiting transaction
    /// (primary first).
    ///
    /// # Panics
    ///
    /// Panics if no fill was outstanding for `block` (protocol bug).
    pub fn complete(&mut self, block: u64) -> Vec<u64> {
        self.entries.remove(&block).expect("completing a fill that was never started")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primary_then_secondary_merging() {
        let mut m = MshrFile::new(4);
        assert_eq!(m.allocate(0x10, 1), MshrOutcome::Primary);
        assert_eq!(m.allocate(0x10, 2), MshrOutcome::Secondary);
        assert_eq!(m.allocate(0x10, 3), MshrOutcome::Secondary);
        assert_eq!(m.in_flight(), 1, "merged misses share one entry");
        assert_eq!(m.complete(0x10), vec![1, 2, 3]);
        assert_eq!(m.in_flight(), 0);
    }

    #[test]
    fn capacity_limits_distinct_blocks() {
        let mut m = MshrFile::new(2);
        assert_eq!(m.allocate(1, 10), MshrOutcome::Primary);
        assert_eq!(m.allocate(2, 11), MshrOutcome::Primary);
        assert!(m.is_full());
        assert_eq!(m.allocate(3, 12), MshrOutcome::Full);
        // Secondary misses still merge even when full.
        assert_eq!(m.allocate(1, 13), MshrOutcome::Secondary);
        m.complete(1);
        assert_eq!(m.allocate(3, 12), MshrOutcome::Primary, "freed entry is reusable");
    }

    #[test]
    #[should_panic(expected = "never started")]
    fn completing_unknown_block_panics() {
        let mut m = MshrFile::new(2);
        m.complete(99);
    }
}
