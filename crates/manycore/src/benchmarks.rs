//! The 35-benchmark catalog and the Table 4 multiprogrammed mixes.
//!
//! The paper draws from SPEC CPU2006, older scientific codes (SPEC
//! CPU2000 / SPLASH-2), and four commercial traces (sap, tpcw, sjbb,
//! sjas). The per-benchmark miss intensities below are calibrated by least
//! squares so that every Table 4 mix reproduces its published average
//! MPKI (= L1-MPKI + L2-MPKI per core) to within 0.1; benchmarks that
//! appear in no mix carry nominal literature-informed values.

use std::fmt;

/// Memory behaviour of one benchmark, the parameters of its synthetic
/// reference process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Benchmark {
    /// Benchmark name as printed in Table 4.
    pub name: &'static str,
    /// Total misses per kilo-instruction (L1-MPKI + L2-MPKI, the paper's
    /// metric).
    pub total_mpki: f64,
    /// Fraction of L1 misses that also miss in the shared L2 (drives the
    /// synthetic working-set size): `l2_mpki = ratio · l1_mpki`.
    pub l2_ratio: f64,
}

impl Benchmark {
    /// L1 misses per kilo-instruction — the rate at which the core's
    /// synthetic trace emits network requests.
    #[must_use]
    pub fn l1_mpki(&self) -> f64 {
        self.total_mpki / (1.0 + self.l2_ratio)
    }

    /// L2 misses per kilo-instruction (requests that continue to memory).
    #[must_use]
    pub fn l2_mpki(&self) -> f64 {
        self.total_mpki - self.l1_mpki()
    }

    /// Looks a benchmark up by name.
    ///
    /// # Panics
    ///
    /// Panics if the name is not in the catalog.
    #[must_use]
    pub fn by_name(name: &str) -> Benchmark {
        *CATALOG
            .iter()
            .find(|b| b.name == name)
            .unwrap_or_else(|| panic!("unknown benchmark {name}"))
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (MPKI {:.1})", self.name, self.total_mpki)
    }
}

const fn bench(name: &'static str, total_mpki: f64, l2_ratio: f64) -> Benchmark {
    Benchmark { name, total_mpki, l2_ratio }
}

/// The 35-benchmark suite (§3). MPKI values for mix members are calibrated
/// to Table 4; `l2_ratio` is higher for streaming codes whose misses blow
/// through the shared L2.
pub const CATALOG: [Benchmark; 35] = [
    // SPEC CPU2006 — compute-bound, cache-friendly.
    bench("sjeng", 0.5, 0.2),
    bench("tonto", 0.5, 0.2),
    bench("povray", 8.5, 0.2),
    bench("gcc", 0.9, 0.2),
    bench("gromacs", 1.3, 0.2),
    bench("namd", 36.0, 0.3),
    bench("hmmer", 16.6, 0.2),
    bench("deal", 12.2, 0.3),
    bench("gobmk", 1.0, 0.2),
    bench("h264ref", 1.5, 0.2),
    bench("perlbench", 2.0, 0.3),
    bench("bzip2", 4.0, 0.3),
    bench("astar", 9.9, 0.4),
    // SPEC CPU2006 — memory-intensive.
    bench("milc", 35.3, 0.8),
    bench("libquantum", 57.5, 0.9),
    bench("xalan", 40.8, 0.5),
    bench("omnet", 42.0, 0.6),
    bench("leslie", 33.8, 0.7),
    bench("lbm", 53.9, 0.8),
    bench("Gems", 79.0, 0.8),
    bench("mcf", 131.2, 0.7),
    bench("soplex", 30.0, 0.6),
    bench("sphinx3", 13.0, 0.5),
    bench("wrf", 8.0, 0.5),
    bench("zeusmp", 6.0, 0.5),
    bench("cactus", 6.5, 0.6),
    // Scientific (SPEC CPU2000 / SPLASH-2).
    bench("applu", 27.0, 0.7),
    bench("swim", 58.2, 0.8),
    bench("art", 47.4, 0.6),
    bench("barnes", 17.3, 0.4),
    bench("ocean", 35.7, 0.7),
    // Commercial traces.
    bench("sap", 72.7, 0.5),
    bench("tpcw", 71.1, 0.5),
    bench("sjbb", 45.1, 0.5),
    bench("sjas", 39.2, 0.5),
];

/// One multiprogrammed workload: benchmarks with instance counts summing
/// to the 64 cores.
#[derive(Debug, Clone, PartialEq)]
pub struct Mix {
    /// Mix name, e.g. "Mix1".
    pub name: &'static str,
    /// `(benchmark, instances)` pairs; instances sum to 64.
    pub apps: Vec<(Benchmark, usize)>,
    /// The average per-core MPKI Table 4 reports for this mix.
    pub paper_avg_mpki: f64,
    /// The speedup of VIX over the baseline Table 4 reports.
    pub paper_speedup: f64,
}

impl Mix {
    /// Per-core benchmark assignment: instance counts expanded in catalog
    /// order (64 entries).
    #[must_use]
    pub fn per_core(&self) -> Vec<Benchmark> {
        let cores: Vec<Benchmark> = self
            .apps
            .iter()
            .flat_map(|(b, n)| std::iter::repeat_n(*b, *n))
            .collect();
        assert_eq!(cores.len(), 64, "a mix must fill all 64 cores");
        cores
    }

    /// Average per-core MPKI of this mix under our calibrated catalog.
    #[must_use]
    pub fn avg_mpki(&self) -> f64 {
        let total: f64 = self.apps.iter().map(|(b, n)| b.total_mpki * *n as f64).sum();
        total / 64.0
    }

    /// The eight Table 4 mixes, in ascending MPKI order.
    #[must_use]
    pub fn table4() -> Vec<Mix> {
        let m = |name, apps: &[(&str, usize)], mpki, speedup| Mix {
            name,
            apps: apps.iter().map(|&(b, n)| (Benchmark::by_name(b), n)).collect(),
            paper_avg_mpki: mpki,
            paper_speedup: speedup,
        };
        vec![
            m(
                "Mix1",
                &[("milc", 11), ("applu", 11), ("astar", 10), ("sjeng", 11), ("tonto", 11), ("hmmer", 10)],
                15.0,
                1.03,
            ),
            m(
                "Mix2",
                &[("sjas", 11), ("gcc", 11), ("sjbb", 11), ("gromacs", 11), ("sjeng", 10), ("xalan", 10)],
                21.3,
                1.03,
            ),
            m(
                "Mix3",
                &[("milc", 11), ("libquantum", 10), ("astar", 11), ("barnes", 11), ("tpcw", 11), ("povray", 10)],
                33.3,
                1.04,
            ),
            m(
                "Mix4",
                &[("astar", 11), ("swim", 11), ("leslie", 10), ("omnet", 10), ("sjas", 11), ("art", 11)],
                38.4,
                1.05,
            ),
            m(
                "Mix5",
                &[("applu", 11), ("lbm", 11), ("Gems", 11), ("barnes", 10), ("xalan", 11), ("leslie", 10)],
                42.5,
                1.05,
            ),
            m(
                "Mix6",
                &[("mcf", 11), ("ocean", 10), ("gromacs", 10), ("lbm", 11), ("deal", 11), ("sap", 11)],
                52.2,
                1.05,
            ),
            m(
                "Mix7",
                &[("mcf", 10), ("namd", 11), ("hmmer", 11), ("tpcw", 11), ("omnet", 10), ("swim", 11)],
                58.4,
                1.06,
            ),
            // Table 4's printed counts for Mix8 sum to 63; we give sap an
            // eleventh instance to fill the 64th core.
            m(
                "Mix8",
                &[("Gems", 10), ("sjbb", 11), ("sjas", 11), ("mcf", 10), ("xalan", 11), ("sap", 11)],
                66.9,
                1.07,
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_35_unique_benchmarks() {
        assert_eq!(CATALOG.len(), 35);
        for (i, a) in CATALOG.iter().enumerate() {
            for b in &CATALOG[i + 1..] {
                assert_ne!(a.name, b.name, "duplicate benchmark {}", a.name);
            }
        }
    }

    #[test]
    fn l1_l2_split_is_consistent() {
        for b in &CATALOG {
            assert!((b.l1_mpki() + b.l2_mpki() - b.total_mpki).abs() < 1e-9, "{}", b.name);
            assert!(b.l2_mpki() <= b.l1_mpki(), "{}: more L2 misses than L1 misses", b.name);
            assert!(b.total_mpki >= 0.0);
        }
    }

    #[test]
    fn every_mix_fills_64_cores() {
        for mix in Mix::table4() {
            assert_eq!(mix.per_core().len(), 64, "{}", mix.name);
            assert_eq!(mix.apps.len(), 6, "{}: six unique applications per mix", mix.name);
        }
    }

    /// The calibration target: each mix's average MPKI matches the Table 4
    /// column to within 1 %.
    #[test]
    fn mix_mpki_matches_table4() {
        for mix in Mix::table4() {
            let got = mix.avg_mpki();
            let err = (got - mix.paper_avg_mpki).abs() / mix.paper_avg_mpki;
            assert!(err < 0.01, "{}: calibrated {got:.2} vs paper {}", mix.name, mix.paper_avg_mpki);
        }
    }

    #[test]
    fn mixes_are_sorted_by_memory_intensity() {
        let mixes = Mix::table4();
        for pair in mixes.windows(2) {
            assert!(pair[0].paper_avg_mpki < pair[1].paper_avg_mpki);
            assert!(pair[0].paper_speedup <= pair[1].paper_speedup, "speedup rises with MPKI");
        }
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(Benchmark::by_name("mcf").name, "mcf");
        assert!(Benchmark::by_name("mcf").total_mpki > 100.0);
    }

    #[test]
    #[should_panic(expected = "unknown benchmark")]
    fn unknown_name_panics() {
        let _ = Benchmark::by_name("doom");
    }

    #[test]
    fn display_shows_intensity() {
        let s = Benchmark::by_name("lbm").to_string();
        assert!(s.contains("lbm") && s.contains("53.9"));
    }
}
