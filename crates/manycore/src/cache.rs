//! Set-associative LRU cache model.

/// A set-associative cache with true-LRU replacement, tracking block
/// presence only (the simulator moves data as packet payloads).
///
/// Used for the shared L2 banks (256 KB, 16-way, 64 B blocks per Table 2).
///
/// # Example
///
/// ```
/// use vix_manycore::SetAssocCache;
///
/// let mut bank = SetAssocCache::new(256 * 1024, 16, 64);
/// assert!(!bank.access(0x40));        // cold miss
/// bank.insert(0x40);
/// assert!(bank.access(0x40));         // hit
/// assert_eq!(bank.misses(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    /// `sets[s]` holds up to `ways` block addresses, MRU first.
    sets: Vec<Vec<u64>>,
    ways: usize,
    accesses: u64,
    misses: u64,
}

impl SetAssocCache {
    /// Creates a cache of `capacity_bytes` with `ways`-way associativity
    /// and `block_bytes` blocks.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly or any parameter is
    /// zero.
    #[must_use]
    pub fn new(capacity_bytes: usize, ways: usize, block_bytes: usize) -> Self {
        assert!(capacity_bytes > 0 && ways > 0 && block_bytes > 0, "cache geometry must be nonzero");
        let blocks = capacity_bytes / block_bytes;
        assert_eq!(blocks * block_bytes, capacity_bytes, "capacity must be a whole number of blocks");
        assert_eq!(blocks % ways, 0, "blocks must divide evenly into sets");
        let num_sets = blocks / ways;
        SetAssocCache { sets: vec![Vec::with_capacity(ways); num_sets], ways, accesses: 0, misses: 0 }
    }

    /// Number of sets.
    #[must_use]
    pub fn num_sets(&self) -> usize {
        self.sets.len()
    }

    /// Associativity.
    #[must_use]
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Total accesses so far.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Total misses so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss ratio so far (0 when never accessed).
    #[must_use]
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    fn set_of(&self, block: u64) -> usize {
        (block % self.sets.len() as u64) as usize
    }

    /// Looks up `block`, updating LRU order and hit/miss statistics.
    /// Returns true on hit. Does **not** allocate on miss — call
    /// [`SetAssocCache::insert`] when the fill returns, as a real
    /// non-blocking cache does.
    pub fn access(&mut self, block: u64) -> bool {
        self.accesses += 1;
        let s = self.set_of(block);
        let set = &mut self.sets[s];
        if let Some(pos) = set.iter().position(|&b| b == block) {
            let b = set.remove(pos);
            set.insert(0, b); // move to MRU
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// True if `block` is resident (no statistics or LRU update).
    #[must_use]
    pub fn probe(&self, block: u64) -> bool {
        self.sets[self.set_of(block)].contains(&block)
    }

    /// Fills `block`, evicting the LRU way if the set is full. Returns the
    /// evicted block, if any. Idempotent for resident blocks.
    pub fn insert(&mut self, block: u64) -> Option<u64> {
        let s = self.set_of(block);
        let ways = self.ways;
        let set = &mut self.sets[s];
        if let Some(pos) = set.iter().position(|&b| b == block) {
            let b = set.remove(pos);
            set.insert(0, b);
            return None;
        }
        let evicted = if set.len() == ways { set.pop() } else { None };
        set.insert(0, block);
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_matches_table2_l2_bank() {
        let bank = SetAssocCache::new(256 * 1024, 16, 64);
        assert_eq!(bank.num_sets(), 256);
        assert_eq!(bank.ways(), 16);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        // 2-way, 1 set: capacity 2 blocks.
        let mut c = SetAssocCache::new(128, 2, 64);
        c.insert(1);
        c.insert(2);
        assert!(c.access(1)); // 1 becomes MRU, 2 is LRU
        assert_eq!(c.insert(3), Some(2), "LRU block 2 must be evicted");
        assert!(c.probe(1));
        assert!(!c.probe(2));
        assert!(c.probe(3));
    }

    #[test]
    fn access_does_not_allocate() {
        let mut c = SetAssocCache::new(128, 2, 64);
        assert!(!c.access(7));
        assert!(!c.probe(7), "miss must not install the block");
        c.insert(7);
        assert!(c.access(7));
    }

    #[test]
    fn blocks_map_to_distinct_sets() {
        let mut c = SetAssocCache::new(256, 1, 64); // 4 direct-mapped sets
        for b in 0..4u64 {
            c.insert(b);
        }
        for b in 0..4u64 {
            assert!(c.probe(b), "no conflict among stride-1 blocks across 4 sets");
        }
    }

    #[test]
    fn miss_ratio_tracks_reuse() {
        let mut c = SetAssocCache::new(64 * 64, 4, 64); // 64 blocks
        for b in 0..32u64 {
            c.access(b);
            c.insert(b);
        }
        for b in 0..32u64 {
            assert!(c.access(b), "working set fits: all re-accesses hit");
        }
        assert!((c.miss_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn thrashing_working_set_misses() {
        let mut c = SetAssocCache::new(64 * 16, 4, 64); // 16 blocks
        // Cyclic sweep over 32 blocks with LRU: every access misses.
        for round in 0..4 {
            for b in 0..32u64 {
                let hit = c.access(b);
                if round > 0 {
                    assert!(!hit, "LRU thrashes a cyclic over-capacity sweep");
                }
                c.insert(b);
            }
        }
    }

    #[test]
    fn reinsert_is_idempotent() {
        let mut c = SetAssocCache::new(128, 2, 64);
        c.insert(5);
        assert_eq!(c.insert(5), None);
        c.insert(6);
        assert_eq!(c.insert(5), None, "resident block refreshes, evicts nothing");
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn bad_geometry_rejected() {
        let _ = SetAssocCache::new(192, 2, 64); // 3 blocks, 2 ways
    }
}
