//! One bank of the shared L2 cache.

use crate::cache::SetAssocCache;
use crate::mshr::{MshrFile, MshrOutcome};
use std::collections::VecDeque;
use vix_core::{Cycle, NodeId};

/// What an L2 bank wants done after processing a lookup or a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L2Response {
    /// Send the block's data back to the requesting core (`txn` names the
    /// original transaction).
    DataToCore {
        /// Original transaction id.
        txn: u64,
    },
    /// Primary miss: fetch the block from the bank's memory controller.
    FetchFromMemory {
        /// Block address to fetch.
        block: u64,
    },
}

/// A shared-L2 bank: a real set-associative cache behind a fixed-latency
/// lookup pipeline and an MSHR file (Table 2: 256 KB, 16-way, 6-cycle
/// latency, 32 MSHRs per bank).
#[derive(Debug, Clone)]
pub struct L2Bank {
    node: NodeId,
    cache: SetAssocCache,
    mshr: MshrFile,
    lookup_latency: u64,
    /// Lookups in flight: `(ready_at, txn, block)`. Bounded by the bank's
    /// few-cycle lookup latency and off the per-cycle NoC transport, so a
    /// `VecDeque` at steady capacity is fine here.
    pipeline: VecDeque<(u64, u64, u64)>,
    hits: u64,
    misses: u64,
    writes: u64,
    /// Deterministic dirty-eviction pacing: every third eviction carries
    /// dirty data to memory.
    evictions: u64,
}

impl L2Bank {
    /// Creates the bank at `node` with Table 2 geometry.
    #[must_use]
    pub fn new(node: NodeId) -> Self {
        L2Bank::with_geometry(node, 256 * 1024, 16, 6, 32)
    }

    /// Creates a bank with explicit geometry (capacity in bytes, ways,
    /// lookup latency in cycles, MSHR entries).
    #[must_use]
    pub fn with_geometry(node: NodeId, capacity: usize, ways: usize, latency: u64, mshrs: usize) -> Self {
        L2Bank {
            node,
            cache: SetAssocCache::new(capacity, ways, 64),
            mshr: MshrFile::new(mshrs),
            lookup_latency: latency,
            pipeline: VecDeque::new(),
            hits: 0,
            misses: 0,
            writes: 0,
            evictions: 0,
        }
    }

    /// The bank's terminal.
    #[must_use]
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Demand hits so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Demand misses so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Observed miss ratio.
    #[must_use]
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }

    /// Accepts a request for `block` by transaction `txn` at time `now`;
    /// the lookup completes `lookup_latency` cycles later.
    pub fn request(&mut self, now: Cycle, txn: u64, block: u64) {
        self.pipeline.push_back((now.0 + self.lookup_latency, txn, block));
    }

    /// Accepts a fill from memory: installs the block and returns all
    /// transactions waiting on it (each needs a data reply to its core).
    pub fn memory_reply(&mut self, block: u64) -> Vec<u64> {
        if self.cache.insert(block).is_some() {
            self.evictions += 1;
        }
        self.mshr.complete(block)
    }

    /// Absorbs an L1 dirty-victim writeback: the block's data is written
    /// into the bank. Returns a victim block that must itself be written
    /// back to memory, if the insertion evicted dirty data (modelled as
    /// every third eviction).
    pub fn write(&mut self, block: u64) -> Option<u64> {
        self.writes += 1;
        let evicted = self.cache.insert(block)?;
        self.evictions += 1;
        self.evictions.is_multiple_of(3).then_some(evicted)
    }

    /// Writebacks absorbed so far.
    #[must_use]
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Advances the lookup pipeline to `now`, returning the actions to
    /// perform.
    pub fn step(&mut self, now: Cycle) -> Vec<L2Response> {
        let mut out = Vec::new();
        while self.pipeline.front().is_some_and(|&(t, _, _)| t <= now.0) {
            let (_, txn, block) = self.pipeline.pop_front().expect("front checked");
            if self.cache.access(block) {
                self.hits += 1;
                out.push(L2Response::DataToCore { txn });
            } else {
                self.misses += 1;
                match self.mshr.allocate(block, txn) {
                    MshrOutcome::Primary => out.push(L2Response::FetchFromMemory { block }),
                    MshrOutcome::Secondary => {}
                    MshrOutcome::Full => {
                        // Structural stall: retry the lookup next cycle.
                        self.pipeline.push_front((now.0 + 1, txn, block));
                        break;
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_miss_fetches_then_hits() {
        let mut bank = L2Bank::new(NodeId(0));
        bank.request(Cycle(0), 1, 0x99);
        assert!(bank.step(Cycle(0)).is_empty(), "lookup still in the pipeline");
        let resp = bank.step(Cycle(6));
        assert_eq!(resp, vec![L2Response::FetchFromMemory { block: 0x99 }]);
        assert_eq!(bank.memory_reply(0x99), vec![1]);
        // Same block again: a hit after the fill.
        bank.request(Cycle(10), 2, 0x99);
        let resp = bank.step(Cycle(16));
        assert_eq!(resp, vec![L2Response::DataToCore { txn: 2 }]);
        assert_eq!(bank.hits(), 1);
        assert_eq!(bank.misses(), 1);
        assert!((bank.miss_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn secondary_misses_merge_into_one_fetch() {
        let mut bank = L2Bank::new(NodeId(0));
        bank.request(Cycle(0), 1, 0x40);
        bank.request(Cycle(1), 2, 0x40);
        let mut fetches = Vec::new();
        fetches.extend(bank.step(Cycle(7)));
        assert_eq!(fetches.len(), 1, "one fetch for two misses on the same block");
        let waiters = bank.memory_reply(0x40);
        assert_eq!(waiters, vec![1, 2]);
    }

    #[test]
    fn lookup_latency_respected() {
        let mut bank = L2Bank::with_geometry(NodeId(0), 1024, 2, 3, 4);
        bank.request(Cycle(10), 7, 0x1);
        assert!(bank.step(Cycle(12)).is_empty());
        assert_eq!(bank.step(Cycle(13)).len(), 1);
    }

    #[test]
    fn full_mshrs_stall_the_pipeline() {
        let mut bank = L2Bank::with_geometry(NodeId(0), 1024, 2, 1, 1);
        bank.request(Cycle(0), 1, 0x10);
        bank.request(Cycle(0), 2, 0x20);
        let resp = bank.step(Cycle(1));
        assert_eq!(resp.len(), 1, "second distinct miss must wait for the MSHR");
        assert_eq!(bank.memory_reply(0x10), vec![1]);
        let resp = bank.step(Cycle(2));
        assert_eq!(resp, vec![L2Response::FetchFromMemory { block: 0x20 }], "retried after the MSHR freed");
    }

    #[test]
    fn requests_processed_in_order() {
        let mut bank = L2Bank::new(NodeId(0));
        bank.memory_reply_seed(&[0x1, 0x2]);
        bank.request(Cycle(0), 1, 0x1);
        bank.request(Cycle(0), 2, 0x2);
        let resp = bank.step(Cycle(6));
        assert_eq!(
            resp,
            vec![L2Response::DataToCore { txn: 1 }, L2Response::DataToCore { txn: 2 }]
        );
    }

    impl L2Bank {
        /// Test helper: pre-installs blocks.
        fn memory_reply_seed(&mut self, blocks: &[u64]) {
            for &b in blocks {
                self.cache.insert(b);
            }
        }
    }

    #[test]
    fn writes_install_blocks_and_pace_dirty_evictions() {
        // Tiny bank: 2 blocks total, so writes evict constantly.
        let mut bank = L2Bank::with_geometry(NodeId(0), 128, 2, 1, 4);
        let mut dirty = 0;
        for b in 0..12u64 {
            if bank.write(b).is_some() {
                dirty += 1;
            }
        }
        assert_eq!(bank.writes(), 12);
        assert!(dirty >= 2, "every third eviction goes to memory, got {dirty}");
        // Recently written blocks are resident (write-allocate).
        bank.request(Cycle(0), 9, 11);
        assert_eq!(bank.step(Cycle(1)), vec![L2Response::DataToCore { txn: 9 }]);
    }
}
