//! The full 64-core system: cores, L2 banks, and memory controllers
//! exchanging messages over the cycle-accurate NoC.

use crate::benchmarks::Mix;
use crate::core_model::CoreModel;
use crate::l2::{L2Bank, L2Response};
use crate::memory::MemoryController;
use std::collections::{HashMap, VecDeque};
use vix_core::{AllocatorKind, Cycle, NetworkConfig, NodeId, SimConfig, TopologyKind};
use vix_sim::NetworkSim;

/// Flits in a request packet (address + metadata in one 128-bit flit).
const REQ_FLITS: usize = 1;
/// Flits in a data packet (64 B block = 4 flits + 1 header flit).
const DATA_FLITS: usize = 5;
/// Memory-controller terminals: one per mesh column half, top and bottom
/// rows (8 controllers, Table 2).
const MC_NODES: [usize; 8] = [1, 3, 5, 7, 56, 58, 60, 62];
/// Effective memory-level parallelism per core (how many misses the OoO
/// window overlaps before stalling).
const MLP_LIMIT: usize = 12;
/// Per-core share of the shared L2, in 64-byte blocks
/// (16 MB / 64 cores / 64 B).
const L2_SHARE_BLOCKS: u64 = 4096;

/// One in-flight message, looked up by packet tag on ejection.
#[derive(Debug, Clone, Copy)]
enum Msg {
    /// Core → L2 bank: fetch `block` for transaction `txn`.
    CoreReq { txn: u64, block: u64 },
    /// L2 bank → memory controller: fill `block` for `bank`.
    MemReq { block: u64, bank: NodeId },
    /// Memory controller → L2 bank: data for `block`.
    MemData { block: u64 },
    /// L2 bank → core: data for transaction `txn`.
    CoreData { txn: u64 },
    /// Core → L2 bank: dirty L1 victim data (no reply).
    CoreWriteback { block: u64 },
    /// L2 bank → memory controller: dirty L2 victim data (no reply).
    MemWriteback,
}

/// Result of one manycore run.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemResult {
    /// Measured IPC per core.
    pub per_core_ipc: Vec<f64>,
    /// Benchmark name each core ran (parallel to `per_core_ipc`).
    pub per_core_benchmark: Vec<&'static str>,
    /// Measured cycles.
    pub cycles: u64,
    /// L1 misses issued during the whole run.
    pub misses_issued: u64,
    /// Dirty-victim writebacks issued during the whole run.
    pub writebacks_issued: u64,
    /// Observed shared-L2 miss ratio.
    pub l2_miss_ratio: f64,
    /// Memory requests served by the controllers.
    pub memory_requests: u64,
}

impl SystemResult {
    /// System throughput: the sum of per-core IPCs (Table 4's speedup
    /// metric compares this between allocators).
    #[must_use]
    pub fn total_ipc(&self) -> f64 {
        self.per_core_ipc.iter().sum()
    }

    /// Mean per-core IPC.
    #[must_use]
    pub fn avg_ipc(&self) -> f64 {
        self.total_ipc() / self.per_core_ipc.len() as f64
    }

    /// Mean IPC per benchmark, in first-appearance order — the per-app
    /// view behind Table 4's system speedups.
    #[must_use]
    pub fn ipc_by_benchmark(&self) -> Vec<(&'static str, f64)> {
        let mut order: Vec<&'static str> = Vec::new();
        let mut sums: std::collections::HashMap<&'static str, (f64, usize)> = Default::default();
        for (name, ipc) in self.per_core_benchmark.iter().zip(&self.per_core_ipc) {
            if !sums.contains_key(name) {
                order.push(name);
            }
            let entry = sums.entry(name).or_insert((0.0, 0));
            entry.0 += ipc;
            entry.1 += 1;
        }
        order
            .into_iter()
            .map(|name| {
                let (sum, n) = sums[name];
                (name, sum / n as f64)
            })
            .collect()
    }
}

/// A 64-core CMP (Table 2) whose cores, L2 banks, and memory controllers
/// communicate over a simulated 8×8 mesh NoC with the chosen switch
/// allocator.
#[derive(Debug)]
pub struct ManycoreSystem {
    net: NetworkSim,
    cores: Vec<CoreModel>,
    banks: Vec<L2Bank>,
    mcs: HashMap<usize, MemoryController>,
    /// Transaction table: txn id → requesting core.
    txns: HashMap<u64, NodeId>,
    /// In-flight message payloads, keyed by packet tag.
    messages: HashMap<u64, Msg>,
    /// Same-node messages bypass the network with a 1-cycle latency:
    /// `(ready_at, dest, msg)`. Cold by construction — only Table-4
    /// application-mix runs build a `ManycoreSystem`; the NoC transport
    /// hot path (ring slabs + pipes) never touches this queue.
    local: VecDeque<(u64, NodeId, Msg)>,
    next_txn: u64,
    next_tag: u64,
}

impl ManycoreSystem {
    /// Builds the system running `mix` over an 8×8 mesh with allocator
    /// `alloc` (paper-default routers; VIX routers get two virtual
    /// inputs).
    ///
    /// # Panics
    ///
    /// Panics if the mix does not fill 64 cores.
    #[must_use]
    pub fn build(mix: &Mix, alloc: AllocatorKind, seed: u64) -> Self {
        let net_cfg = NetworkConfig::paper_default(TopologyKind::Mesh, alloc);
        let sim_cfg = SimConfig::new(net_cfg, 0.0).with_seed(seed).with_windows(0, u64::MAX, 0);
        let net = NetworkSim::build(sim_cfg).expect("paper-default mesh config is valid");
        let cores = mix
            .per_core()
            .into_iter()
            .enumerate()
            .map(|(n, b)| CoreModel::new(NodeId(n), b, MLP_LIMIT, L2_SHARE_BLOCKS, seed))
            .collect();
        let banks = (0..64).map(|n| L2Bank::new(NodeId(n))).collect();
        let mcs = MC_NODES.iter().map(|&n| (n, MemoryController::new(NodeId(n)))).collect();
        ManycoreSystem {
            net,
            cores,
            banks,
            mcs,
            txns: HashMap::new(),
            messages: HashMap::new(),
            local: VecDeque::new(),
            next_txn: 0,
            next_tag: 0,
        }
    }

    /// L2 bank holding a block (block-interleaved across all 64 banks).
    fn bank_of(block: u64) -> NodeId {
        NodeId((block % 64) as usize)
    }

    /// Memory controller serving a bank (static assignment).
    fn mc_of(bank: NodeId) -> NodeId {
        NodeId(MC_NODES[bank.0 % MC_NODES.len()])
    }

    fn send(&mut self, now: Cycle, src: NodeId, dest: NodeId, msg: Msg, flits: usize) {
        if src == dest {
            self.local.push_back((now.0 + 1, dest, msg));
        } else {
            let tag = self.next_tag;
            self.next_tag += 1;
            self.messages.insert(tag, msg);
            self.net.inject(src, dest, flits, tag);
        }
    }

    fn handle(&mut self, now: Cycle, dest: NodeId, msg: Msg) {
        match msg {
            Msg::CoreReq { txn, block } => self.banks[dest.0].request(now, txn, block),
            Msg::MemReq { block, bank } => {
                self.mcs.get_mut(&dest.0).expect("MemReq lands on a controller node").request(
                    now, block, bank,
                );
            }
            Msg::MemData { block } => {
                let waiters = self.banks[dest.0].memory_reply(block);
                for txn in waiters {
                    let core = self.txns[&txn];
                    self.send(now, dest, core, Msg::CoreData { txn }, DATA_FLITS);
                }
            }
            Msg::CoreData { txn } => {
                self.txns.remove(&txn).expect("data reply for unknown transaction");
                self.cores[dest.0].on_reply();
            }
            Msg::CoreWriteback { block } => {
                if let Some(victim) = self.banks[dest.0].write(block) {
                    let _ = victim; // data payload is not modelled
                    let mc = Self::mc_of(dest);
                    self.send(now, dest, mc, Msg::MemWriteback, DATA_FLITS);
                }
            }
            Msg::MemWriteback => {
                // DRAM writes are buffered by the controller; no further
                // traffic or latency is modelled for them.
            }
        }
    }

    /// Runs one system cycle.
    pub fn step(&mut self) {
        let now = self.net.now();

        // 1. Deliver network ejections and due local messages.
        for e in self.net.take_ejections() {
            let msg = self.messages.remove(&e.packet.tag).expect("ejected packet has a message");
            self.handle(now, e.packet.dest, msg);
        }
        while self.local.front().is_some_and(|&(t, _, _)| t <= now.0) {
            let (_, dest, msg) = self.local.pop_front().expect("front checked");
            self.handle(now, dest, msg);
        }

        // 2. L2 bank pipelines.
        for n in 0..64 {
            let bank_node = NodeId(n);
            for resp in self.banks[n].step(now) {
                match resp {
                    L2Response::DataToCore { txn } => {
                        let core = self.txns[&txn];
                        self.send(now, bank_node, core, Msg::CoreData { txn }, DATA_FLITS);
                    }
                    L2Response::FetchFromMemory { block } => {
                        let mc = Self::mc_of(bank_node);
                        self.send(now, bank_node, mc, Msg::MemReq { block, bank: bank_node }, REQ_FLITS);
                    }
                }
            }
        }

        // 3. Memory controllers.
        let mc_nodes: Vec<usize> = self.mcs.keys().copied().collect();
        for n in mc_nodes {
            let replies = self.mcs.get_mut(&n).expect("known controller").step(now);
            for (block, bank) in replies {
                self.send(now, NodeId(n), bank, Msg::MemData { block }, DATA_FLITS);
            }
        }

        // 4. Cores issue new misses and dirty-victim writebacks.
        for n in 0..64 {
            let core_node = NodeId(n);
            for block in self.cores[n].step() {
                let txn = self.next_txn;
                self.next_txn += 1;
                self.txns.insert(txn, core_node);
                let bank = Self::bank_of(block);
                self.send(now, core_node, bank, Msg::CoreReq { txn, block }, REQ_FLITS);
            }
            for block in self.cores[n].take_writebacks() {
                let bank = Self::bank_of(block);
                self.send(now, core_node, bank, Msg::CoreWriteback { block }, DATA_FLITS);
            }
        }

        // 5. Clock the network.
        self.net.step();
    }

    /// Runs `warmup` unmeasured cycles then `measure` measured cycles and
    /// returns per-core IPCs over the measured window.
    #[must_use]
    pub fn run_windows(&mut self, warmup: u64, measure: u64) -> SystemResult {
        for _ in 0..warmup {
            self.step();
        }
        let baseline: Vec<u64> = self.cores.iter().map(CoreModel::committed).collect();
        for _ in 0..measure {
            self.step();
        }
        let per_core_ipc = self
            .cores
            .iter()
            .zip(&baseline)
            .map(|(c, &b)| (c.committed() - b) as f64 / measure as f64)
            .collect();
        let (hits, misses) = self
            .banks
            .iter()
            .fold((0u64, 0u64), |(h, m), b| (h + b.hits(), m + b.misses()));
        SystemResult {
            per_core_ipc,
            per_core_benchmark: self.cores.iter().map(|c| c.benchmark().name).collect(),
            cycles: measure,
            misses_issued: self.cores.iter().map(CoreModel::misses_issued).sum(),
            writebacks_issued: self.cores.iter().map(CoreModel::writebacks_issued).sum(),
            l2_miss_ratio: if hits + misses == 0 { 0.0 } else { misses as f64 / (hits + misses) as f64 },
            memory_requests: self.mcs.values().map(MemoryController::served).sum(),
        }
    }

    /// Runs with a default warmup of one quarter of the measured window.
    #[must_use]
    pub fn run(&mut self, measure: u64) -> SystemResult {
        self.run_windows(measure / 4, measure)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks::Mix;

    fn mix(i: usize) -> Mix {
        Mix::table4()[i].clone()
    }

    #[test]
    fn cores_make_progress() {
        let mut sys = ManycoreSystem::build(&mix(0), AllocatorKind::InputFirst, 1);
        let r = sys.run_windows(500, 2000);
        assert!(r.total_ipc() > 0.0);
        assert!(r.avg_ipc() <= 2.0, "no core exceeds its commit width");
        assert_eq!(r.per_core_ipc.len(), 64);
    }

    #[test]
    fn memory_intensity_lowers_ipc() {
        let light = ManycoreSystem::build(&mix(0), AllocatorKind::InputFirst, 1)
            .run_windows(500, 3000);
        let heavy = ManycoreSystem::build(&mix(7), AllocatorKind::InputFirst, 1)
            .run_windows(500, 3000);
        assert!(
            light.total_ipc() > heavy.total_ipc() * 1.3,
            "Mix1 {:.1} vs Mix8 {:.1}: memory-bound mixes must run slower",
            light.total_ipc(),
            heavy.total_ipc()
        );
    }

    #[test]
    fn writebacks_flow_without_stalling_cores() {
        let mut sys = ManycoreSystem::build(&mix(4), AllocatorKind::InputFirst, 1);
        let r = sys.run_windows(200, 2000);
        assert!(r.writebacks_issued > 0, "streaming mixes must write back dirty victims");
        assert!(
            r.writebacks_issued < r.misses_issued,
            "writebacks are a fraction of misses"
        );
    }

    #[test]
    fn l2_misses_reach_memory() {
        let mut sys = ManycoreSystem::build(&mix(4), AllocatorKind::InputFirst, 1);
        let r = sys.run_windows(200, 2000);
        assert!(r.l2_miss_ratio > 0.0, "streaming mixes must miss in the L2");
        assert!(r.memory_requests > 0, "L2 misses must reach the controllers");
    }

    #[test]
    fn transactions_all_complete_eventually() {
        let mut sys = ManycoreSystem::build(&mix(0), AllocatorKind::InputFirst, 1);
        for _ in 0..3000 {
            sys.step();
        }
        // Stop issuing (cores stall naturally once we stop stepping them);
        // drain by stepping the network side only via full steps — any
        // stuck transaction would leave the table non-empty forever.
        let before = sys.txns.len();
        for _ in 0..2000 {
            sys.step();
        }
        // The table keeps turning over; it must stay bounded (no leaks).
        assert!(sys.txns.len() < before + 64 * MLP_LIMIT, "transaction leak: {}", sys.txns.len());
    }

    #[test]
    fn per_benchmark_ipc_covers_the_mix() {
        let mut sys = ManycoreSystem::build(&mix(0), AllocatorKind::InputFirst, 1);
        let r = sys.run_windows(200, 1500);
        let by_bench = r.ipc_by_benchmark();
        assert_eq!(by_bench.len(), 6, "six unique applications per mix");
        for (name, ipc) in &by_bench {
            assert!(*ipc > 0.0, "{name} made no progress");
            assert!(*ipc <= 2.0, "{name} exceeded the commit width");
        }
        // Cache-resident sjeng must outrun memory-hungry milc.
        let get = |n: &str| by_bench.iter().find(|(b, _)| *b == n).unwrap().1;
        assert!(get("sjeng") > get("milc"));
    }

    #[test]
    fn deterministic_under_same_seed() {
        let a = ManycoreSystem::build(&mix(2), AllocatorKind::Vix, 7).run_windows(200, 1000);
        let b = ManycoreSystem::build(&mix(2), AllocatorKind::Vix, 7).run_windows(200, 1000);
        assert_eq!(a, b);
    }

    #[test]
    fn vix_never_slows_a_heavy_mix() {
        let base = ManycoreSystem::build(&mix(7), AllocatorKind::InputFirst, 3)
            .run_windows(1000, 4000);
        let vix = ManycoreSystem::build(&mix(7), AllocatorKind::Vix, 3).run_windows(1000, 4000);
        let speedup = vix.total_ipc() / base.total_ipc();
        assert!(speedup > 0.99, "VIX speedup {speedup:.3} on the heaviest mix");
    }
}
