//! Trace-driven 64-core CMP substrate for application-level evaluation
//! (§3, §4.7, Table 4 of the paper).
//!
//! The paper drives its NoC with traces of 35 SPEC CPU2006 / scientific /
//! commercial benchmarks through a trace-driven manycore simulator (64
//! 2-way out-of-order cores, private 32 KB L1s, a 64-bank 16 MB shared L2,
//! 8 memory controllers — Table 2). Those traces are proprietary, so this
//! crate substitutes *synthetic per-benchmark memory reference processes*
//! parameterised by the benchmarks' miss intensities (MPKI), calibrated so
//! every Table 4 mix reproduces its published average MPKI. The
//! application-level result — VIX speedup grows with memory intensity —
//! depends on miss traffic intensity and latency sensitivity, both of
//! which the synthetic processes preserve.
//!
//! Components, each a real micro-architectural model:
//!
//! * [`SetAssocCache`] — LRU set-associative cache (used for the L2 banks);
//! * [`MshrFile`] — miss-status holding registers with secondary-miss
//!   merging;
//! * [`CoreModel`] — a 2-wide core with a bounded-MLP stall model;
//! * [`L2Bank`] — banked shared L2 with a 6-cycle pipeline;
//! * [`MemoryController`] — fixed-latency, bandwidth-limited DRAM port;
//! * [`ManycoreSystem`] — wires 64 of everything onto a [`NetworkSim`].
//!
//! # Example
//!
//! ```no_run
//! use vix_manycore::{ManycoreSystem, Mix};
//! use vix_core::AllocatorKind;
//!
//! let mix = Mix::table4()[0].clone(); // Mix1
//! let base = ManycoreSystem::build(&mix, AllocatorKind::InputFirst, 1).run(20_000);
//! let vix = ManycoreSystem::build(&mix, AllocatorKind::Vix, 1).run(20_000);
//! println!("speedup {:.3}", vix.total_ipc() / base.total_ipc());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod benchmarks;
mod cache;
mod core_model;
mod l2;
mod memory;
mod mshr;
mod system;

pub use benchmarks::{Benchmark, Mix, CATALOG};
pub use cache::SetAssocCache;
pub use core_model::CoreModel;
pub use l2::{L2Bank, L2Response};
pub use memory::MemoryController;
pub use mshr::{MshrFile, MshrOutcome};
pub use system::{ManycoreSystem, SystemResult};

pub use vix_sim::NetworkSim;
