//! On-chip memory controller model.

use std::collections::VecDeque;
use vix_core::{Cycle, NodeId};

/// A memory controller: fixed DRAM access latency, bounded outstanding
/// requests, and a bandwidth cap on replies (Table 2: 8 controllers,
/// 80 ns ≈ 160 cycles at 2 GHz, 4 DDR channels each).
#[derive(Debug, Clone)]
pub struct MemoryController {
    node: NodeId,
    latency: u64,
    max_outstanding: usize,
    /// Minimum cycles between replies (bandwidth cap).
    reply_gap: u64,
    /// `(ready_at, block, reply_to_bank)`. A `VecDeque` is fine here:
    /// controllers sit off the per-cycle NoC transport (the zero-alloc /
    /// hotpath gates never build a manycore system), see a few requests
    /// per hundred cycles, and reach steady capacity after warmup.
    in_flight: VecDeque<(u64, u64, NodeId)>,
    /// Requests waiting for an outstanding slot.
    backlog: VecDeque<(u64, NodeId)>,
    last_reply_at: u64,
    served: u64,
}

impl MemoryController {
    /// Creates a controller at `node` with Table 2 parameters.
    #[must_use]
    pub fn new(node: NodeId) -> Self {
        MemoryController::with_parameters(node, 160, 64, 2)
    }

    /// Creates a controller with explicit latency (cycles), outstanding
    /// request limit, and reply gap (cycles between replies).
    ///
    /// # Panics
    ///
    /// Panics if `max_outstanding` is zero.
    #[must_use]
    pub fn with_parameters(node: NodeId, latency: u64, max_outstanding: usize, reply_gap: u64) -> Self {
        assert!(max_outstanding > 0, "controller needs at least one slot");
        MemoryController {
            node,
            latency,
            max_outstanding,
            reply_gap,
            in_flight: VecDeque::new(),
            backlog: VecDeque::new(),
            last_reply_at: 0,
            served: 0,
        }
    }

    /// The controller's terminal.
    #[must_use]
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Requests served so far.
    #[must_use]
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Requests currently queued or in flight.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.in_flight.len() + self.backlog.len()
    }

    /// Enqueues a fetch of `block` on behalf of L2 bank `bank`.
    pub fn request(&mut self, now: Cycle, block: u64, bank: NodeId) {
        if self.in_flight.len() < self.max_outstanding {
            self.in_flight.push_back((now.0 + self.latency, block, bank));
        } else {
            self.backlog.push_back((block, bank));
        }
    }

    /// Advances to `now`, returning `(block, bank)` fills whose data is
    /// ready, at most one per `reply_gap` cycles.
    pub fn step(&mut self, now: Cycle) -> Vec<(u64, NodeId)> {
        let mut replies = Vec::new();
        while self.in_flight.front().is_some_and(|&(t, _, _)| t <= now.0) {
            if self.served > 0 && now.0 < self.last_reply_at + self.reply_gap {
                break; // bandwidth cap: retry next cycle
            }
            let (_, block, bank) = self.in_flight.pop_front().expect("front checked");
            self.last_reply_at = now.0;
            self.served += 1;
            replies.push((block, bank));
            if let Some((b, n)) = self.backlog.pop_front() {
                self.in_flight.push_back((now.0 + self.latency, b, n));
            }
            // One reply per step call when a gap is configured.
            if self.reply_gap > 0 {
                break;
            }
        }
        replies
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_latency_service() {
        let mut mc = MemoryController::with_parameters(NodeId(0), 100, 8, 0);
        mc.request(Cycle(5), 0x40, NodeId(3));
        assert!(mc.step(Cycle(104)).is_empty());
        assert_eq!(mc.step(Cycle(105)), vec![(0x40, NodeId(3))]);
        assert_eq!(mc.served(), 1);
    }

    #[test]
    fn reply_gap_limits_bandwidth() {
        let mut mc = MemoryController::with_parameters(NodeId(0), 10, 8, 4);
        for i in 0..3 {
            mc.request(Cycle(0), i, NodeId(1));
        }
        let mut reply_times = Vec::new();
        for t in 0..40u64 {
            for _ in mc.step(Cycle(t)) {
                reply_times.push(t);
            }
        }
        assert_eq!(reply_times.len(), 3);
        for pair in reply_times.windows(2) {
            assert!(pair[1] - pair[0] >= 4, "replies too close: {reply_times:?}");
        }
    }

    #[test]
    fn backlog_spills_beyond_outstanding_limit() {
        let mut mc = MemoryController::with_parameters(NodeId(0), 10, 2, 0);
        for i in 0..5 {
            mc.request(Cycle(0), i, NodeId(1));
        }
        assert_eq!(mc.pending(), 5);
        let mut got = 0;
        for t in 0..100u64 {
            got += mc.step(Cycle(t)).len();
        }
        assert_eq!(got, 5, "backlogged requests are eventually served");
        assert_eq!(mc.pending(), 0);
    }
}
