// Gated: `proptest` comes from crates.io, which offline build
// environments cannot reach. Enable the `proptest` feature (and
// re-add the dev-dependency) to run this suite; see Cargo.toml.
#![cfg(feature = "proptest")]

//! Property tests for the CMP substrate components.

use proptest::prelude::*;
use vix_manycore::{MshrFile, MshrOutcome, SetAssocCache};

proptest! {
    /// A cache never holds more blocks than its capacity, and a just-
    /// inserted block is always resident.
    #[test]
    fn cache_capacity_respected(accesses in prop::collection::vec(0u64..64, 1..300)) {
        let mut cache = SetAssocCache::new(16 * 64, 4, 64); // 16 blocks
        for &block in &accesses {
            cache.access(block);
            cache.insert(block);
            prop_assert!(cache.probe(block), "inserted block must be resident");
        }
        let resident = (0..64).filter(|&b| cache.probe(b)).count();
        prop_assert!(resident <= 16, "capacity exceeded: {resident}");
    }

    /// A working set that fits never misses after the first pass,
    /// regardless of access order.
    #[test]
    fn fitting_working_set_converges(order in Just(()), seed in 0u64..1000) {
        let mut cache = SetAssocCache::new(64 * 64, 64, 64); // fully assoc., 64 blocks
        let _ = order;
        // Two passes over 32 blocks in a seed-dependent order.
        let perm: Vec<u64> = (0..32).map(|i| (i * 7 + seed) % 32).collect();
        for &b in &perm {
            cache.access(b);
            cache.insert(b);
        }
        for &b in &perm {
            prop_assert!(cache.access(b), "second pass must hit");
        }
    }

    /// The MSHR file never tracks more than its capacity in distinct
    /// blocks, and completing always returns every merged waiter.
    #[test]
    fn mshr_bookkeeping(ops in prop::collection::vec((0u64..8, 0u64..1000), 1..100)) {
        let mut mshr = MshrFile::new(4);
        let mut expected: std::collections::HashMap<u64, Vec<u64>> = Default::default();
        for (block, txn) in ops {
            match mshr.allocate(block, txn) {
                MshrOutcome::Primary => {
                    expected.insert(block, vec![txn]);
                }
                MshrOutcome::Secondary => {
                    expected.get_mut(&block).expect("secondary implies primary").push(txn);
                }
                MshrOutcome::Full => {
                    prop_assert!(expected.len() >= 4, "Full only when at capacity");
                }
            }
            prop_assert!(mshr.in_flight() <= 4);
        }
        for (block, waiters) in expected {
            prop_assert_eq!(mshr.complete(block), waiters);
        }
        prop_assert_eq!(mshr.in_flight(), 0);
    }
}
