//! `vixsim` — command-line front-end for the VIX NoC simulator.
//!
//! ```text
//! vixsim [--topology mesh|cmesh|fbfly] [--allocator if|vix|wf|wfvix|ap|pc|islip]
//!        [--nodes N] [--rate R] [--packet-len N] [--vcs V] [--virtual-inputs K]
//!        [--pattern uniform|transpose|bitcomp|bitrev|shuffle|neighbor]
//!        [--warmup N] [--measure N] [--drain N] [--seed S] [--jobs N]
//!        [--shards N|auto] [--shard-weights FILE]
//!        [--no-speculation] [--no-dimension-aware] [--age-based-sa]
//!        [--trace-out FILE] [--metrics-out FILE]
//!        [--profile-out FILE] [--heartbeat N] [--heartbeat-out FILE]
//! ```
//!
//! Example: `vixsim --allocator vix --rate 0.10 --pattern transpose`
//!
//! `--trace-out` records the flit-lifecycle trace of a single run: a
//! `.json` path gets the Chrome trace-event format (open in Perfetto or
//! `chrome://tracing`), anything else line-delimited JSON. `--metrics-out`
//! writes the metrics registry and the allocator matching-efficiency
//! record as JSON; in sweep mode it holds the per-rate matching records.
//!
//! `--profile-out` turns on engine self-profiling (phase spans over the
//! pipeline phases, stats merge, and shard barrier waits — DESIGN.md §7)
//! and writes it out: `.json` = Chrome trace-event with one Perfetto
//! track per shard, otherwise span JSON lines; in sweep mode it holds
//! the merged phase-breakdown JSON. `--heartbeat N` samples a
//! [`SimHealth`](vix::telemetry::SimHealth) snapshot every `N` cycles
//! and streams it to stderr live; `--heartbeat-out` writes the snapshots
//! as JSON lines instead (both imply profiling). Unlike `--trace-out`,
//! profiling composes with `--shards`: that is where the per-shard
//! busy/barrier balance comes from.
//!
//! `--shards auto` picks the shard count from the host's available
//! parallelism (capped so each shard owns enough routers to amortize the
//! cycle barrier). `--shard-weights FILE` reads one relative cost per
//! router (whitespace-separated floats, `#` comments) and cuts the
//! contiguous shard partition so per-shard weight — not router count —
//! is balanced; feed it per-router utilization or a prior run's profiler
//! busy ratios. Both are pure performance knobs: results are
//! bit-identical for every shard count and weighting (DESIGN.md §8).

use std::process::ExitCode;
use vix::prelude::*;
use vix::{NodeId, VirtualInputs};

struct Options {
    topology: TopologyKind,
    allocator: AllocatorKind,
    nodes: usize,
    rate: f64,
    packet_len: usize,
    vcs: usize,
    virtual_inputs: usize,
    pattern: TrafficPattern,
    warmup: u64,
    measure: u64,
    drain: u64,
    seed: u64,
    jobs: usize,
    shards: usize,
    speculation: bool,
    dimension_aware: bool,
    age_based_sa: bool,
    five_stage: bool,
    shard_weights: Option<String>,
    sweep_csv: Option<String>,
    trace_out: Option<String>,
    metrics_out: Option<String>,
    profile_out: Option<String>,
    heartbeat: u64,
    heartbeat_out: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            topology: TopologyKind::Mesh,
            allocator: AllocatorKind::Vix,
            nodes: 64,
            rate: 0.05,
            packet_len: 4,
            vcs: 6,
            virtual_inputs: 0, // 0 = derive from allocator
            pattern: TrafficPattern::UniformRandom,
            warmup: 2_000,
            measure: 10_000,
            drain: 3_000,
            seed: 0xC0FFEE,
            jobs: 0,   // sweeps use all cores unless pinned
            shards: 1, // single runs are serial unless asked
            speculation: true,
            dimension_aware: true,
            age_based_sa: false,
            five_stage: false,
            shard_weights: None,
            sweep_csv: None,
            trace_out: None,
            metrics_out: None,
            profile_out: None,
            heartbeat: 0,
            heartbeat_out: None,
        }
    }
}

const USAGE: &str = "usage: vixsim [options]
  --topology mesh|cmesh|fbfly      (default mesh)
  --allocator if|of|vix|wf|wfvix|ap|pc|islip   (default vix)
  --nodes <n>                      terminal count, a perfect square of the
                                   topology's concentration grid (default 64)
  --rate <pkts/cycle/node>         (default 0.05)
  --packet-len <flits>             (default 4)
  --vcs <n>                        (default 6)
  --virtual-inputs <k>             (default: 2 for vix/wfvix, else 1)
  --pattern uniform|transpose|bitcomp|bitrev|shuffle|neighbor
  --warmup/--measure/--drain <cycles>
  --seed <n>
  --jobs <n>                       sweep worker threads; 0 = all cores
                                   (default 0; results identical for any value)
  --shards <n|auto>                worker threads inside each simulation;
                                   auto (= 0) picks from the host's cores
                                   (default 1; results identical for any
                                   value — DESIGN.md §8)
  --shard-weights <file>           per-router cost weights for the shard
                                   partition, one float per router
                                   (whitespace-separated, # comments);
                                   single run only. Pure load-balance
                                   knob: results never change
  --no-speculation  --no-dimension-aware  --age-based-sa  --five-stage
  --sweep-csv <file>               run a 10-point rate sweep, write CSV
  --trace-out <file>               record the flit-lifecycle trace (single
                                   run only): .json = Chrome trace-event
                                   (Perfetto), otherwise JSON lines
  --metrics-out <file>             write metrics + matching efficiency JSON
  --profile-out <file>             engine self-profile: .json = Chrome
                                   trace-event with one track per shard
                                   (Perfetto), otherwise span JSON lines;
                                   sweep mode writes the phase-breakdown
                                   JSON. Composes with --shards.
  --heartbeat <cycles>             stream a SimHealth snapshot to stderr
                                   every N cycles (implies profiling)
  --heartbeat-out <file>           write heartbeat snapshots as JSON lines
                                   (single run; default interval 1000)";

fn parse(args: &[String]) -> Result<Options, String> {
    let mut opt = Options::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next().ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--topology" => {
                opt.topology = match value()?.as_str() {
                    "mesh" => TopologyKind::Mesh,
                    "cmesh" => TopologyKind::CMesh,
                    "fbfly" => TopologyKind::FlattenedButterfly,
                    other => return Err(format!("unknown topology {other}")),
                }
            }
            "--allocator" => {
                opt.allocator = match value()?.as_str() {
                    "if" => AllocatorKind::InputFirst,
                    "of" => AllocatorKind::OutputFirst,
                    "vix" => AllocatorKind::Vix,
                    "wf" => AllocatorKind::Wavefront,
                    "wfvix" => AllocatorKind::WavefrontVix,
                    "ap" => AllocatorKind::AugmentingPath,
                    "pc" => AllocatorKind::PacketChaining,
                    "islip" => AllocatorKind::Islip(2),
                    other => return Err(format!("unknown allocator {other}")),
                }
            }
            "--nodes" => opt.nodes = value()?.parse().map_err(|e| format!("bad nodes: {e}"))?,
            "--rate" => opt.rate = value()?.parse().map_err(|e| format!("bad rate: {e}"))?,
            "--packet-len" => {
                opt.packet_len = value()?.parse().map_err(|e| format!("bad packet length: {e}"))?
            }
            "--vcs" => opt.vcs = value()?.parse().map_err(|e| format!("bad vc count: {e}"))?,
            "--virtual-inputs" => {
                opt.virtual_inputs =
                    value()?.parse().map_err(|e| format!("bad virtual inputs: {e}"))?
            }
            "--pattern" => {
                opt.pattern = match value()?.as_str() {
                    "uniform" => TrafficPattern::UniformRandom,
                    "transpose" => TrafficPattern::Transpose,
                    "bitcomp" => TrafficPattern::BitComplement,
                    "bitrev" => TrafficPattern::BitReverse,
                    "shuffle" => TrafficPattern::Shuffle,
                    "neighbor" => TrafficPattern::NearestNeighbor,
                    "hotspot" => TrafficPattern::Hotspot {
                        spots: vec![NodeId(0), NodeId(63)],
                        fraction: 0.2,
                    },
                    other => return Err(format!("unknown pattern {other}")),
                }
            }
            "--warmup" => opt.warmup = value()?.parse().map_err(|e| format!("bad warmup: {e}"))?,
            "--measure" => opt.measure = value()?.parse().map_err(|e| format!("bad measure: {e}"))?,
            "--drain" => opt.drain = value()?.parse().map_err(|e| format!("bad drain: {e}"))?,
            "--seed" => opt.seed = value()?.parse().map_err(|e| format!("bad seed: {e}"))?,
            "--jobs" => opt.jobs = value()?.parse().map_err(|e| format!("bad jobs: {e}"))?,
            "--shards" => {
                opt.shards = match value()?.as_str() {
                    "auto" => 0,
                    n => n.parse().map_err(|e| format!("bad shards: {e}"))?,
                }
            }
            "--shard-weights" => opt.shard_weights = Some(value()?.clone()),
            "--no-speculation" => opt.speculation = false,
            "--five-stage" => opt.five_stage = true,
            "--sweep-csv" => opt.sweep_csv = Some(value()?.clone()),
            "--trace-out" => opt.trace_out = Some(value()?.clone()),
            "--metrics-out" => opt.metrics_out = Some(value()?.clone()),
            "--profile-out" => opt.profile_out = Some(value()?.clone()),
            "--heartbeat" => {
                opt.heartbeat = value()?.parse().map_err(|e| format!("bad heartbeat: {e}"))?
            }
            "--heartbeat-out" => opt.heartbeat_out = Some(value()?.clone()),
            "--no-dimension-aware" => opt.dimension_aware = false,
            "--age-based-sa" => opt.age_based_sa = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(opt)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opt = match parse(&args) {
        Ok(opt) => opt,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}\n");
            }
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    if let TrafficPattern::Hotspot { spots, .. } = &mut opt.pattern {
        // The hot spots are the network corners; retarget them when
        // --nodes moves the last terminal away from 63.
        *spots = vec![NodeId(0), NodeId(opt.nodes.saturating_sub(1))];
    }

    let needs_vi = matches!(opt.allocator, AllocatorKind::Vix | AllocatorKind::WavefrontVix);
    let k = match opt.virtual_inputs {
        0 if needs_vi => 2,
        0 => 1,
        k => k,
    };
    let vi = match k {
        1 => VirtualInputs::None,
        k if k == opt.vcs => VirtualInputs::Ideal,
        k => VirtualInputs::PerPort(k),
    };
    // Derive the router radix from an actual topology instance so
    // `--nodes` works for any valid terminal count, not just the paper's
    // 64 (the fbfly radix grows with the mesh side).
    let (radix, routers) = match vix::topology::build_topology(opt.topology, opt.nodes) {
        Ok(t) => (t.radix(), t.routers()),
        Err(e) => {
            eprintln!("error: invalid configuration: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Per-router cost weights for the sharded engine's partition: one
    // finite non-negative float per router, `#`-comments allowed.
    let shard_weights: Option<Vec<f64>> = match &opt.shard_weights {
        None => None,
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("error: cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let mut weights = Vec::with_capacity(routers);
            for token in text
                .lines()
                .map(|l| l.split('#').next().unwrap_or(""))
                .flat_map(str::split_whitespace)
            {
                match token.parse::<f64>() {
                    Ok(w) if w.is_finite() && w >= 0.0 => weights.push(w),
                    _ => {
                        eprintln!(
                            "error: {path}: bad weight {token:?} (need a finite float ≥ 0)"
                        );
                        return ExitCode::FAILURE;
                    }
                }
            }
            if weights.len() != routers {
                eprintln!(
                    "error: {path}: {} weights for {routers} routers \
                     ({:?} with {} nodes)",
                    weights.len(),
                    opt.topology,
                    opt.nodes
                );
                return ExitCode::FAILURE;
            }
            if weights.iter().all(|&w| w == 0.0) {
                eprintln!("error: {path}: at least one weight must be positive");
                return ExitCode::FAILURE;
            }
            Some(weights)
        }
    };
    let router = vix::RouterConfig::paper_default(radix)
        .with_vcs(opt.vcs)
        .with_virtual_inputs(vi)
        .with_speculation(opt.speculation)
        .with_dimension_aware_va(opt.dimension_aware)
        .with_age_based_sa(opt.age_based_sa)
        .with_pipeline(if opt.five_stage {
            vix::PipelineKind::FiveStage
        } else {
            vix::PipelineKind::ThreeStage
        });
    let network =
        NetworkConfig { topology: opt.topology, nodes: opt.nodes, router, allocator: opt.allocator };
    let profiling =
        opt.profile_out.is_some() || opt.heartbeat > 0 || opt.heartbeat_out.is_some();
    // --heartbeat-out without an explicit interval samples every 1000
    // cycles; --heartbeat alone streams to stderr live.
    let beat_every = if opt.heartbeat > 0 {
        opt.heartbeat
    } else if opt.heartbeat_out.is_some() {
        1_000
    } else {
        0
    };
    let telemetry = TelemetrySettings::disabled()
        .with_tracing(opt.trace_out.is_some())
        .with_metrics(opt.metrics_out.is_some() && opt.sweep_csv.is_none())
        .with_profiling(profiling)
        .with_heartbeat(beat_every)
        .with_heartbeat_stream(opt.heartbeat > 0);
    let cfg = SimConfig::new(network, opt.rate)
        .with_packet_len(opt.packet_len)
        .with_windows(opt.warmup, opt.measure, opt.drain)
        .with_seed(opt.seed)
        .with_jobs(opt.jobs)
        .with_shards(opt.shards)
        .with_telemetry(telemetry);

    if let Some(path) = &opt.sweep_csv {
        if opt.trace_out.is_some() {
            eprintln!("error: --trace-out records a single run; drop --sweep-csv");
            return ExitCode::FAILURE;
        }
        if shard_weights.is_some() {
            eprintln!("error: --shard-weights shapes a single run; drop --sweep-csv");
            return ExitCode::FAILURE;
        }
        if opt.heartbeat_out.is_some() {
            eprintln!("error: --heartbeat-out records a single run; drop --sweep-csv");
            return ExitCode::FAILURE;
        }
        let sweep = match LoadSweep::new(cfg).with_pattern(opt.pattern.clone()).run() {
            Ok(sweep) => sweep,
            Err(e) => {
                eprintln!("error: invalid configuration: {e}");
                return ExitCode::FAILURE;
            }
        };
        let file = match std::fs::File::create(path) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("error: cannot create {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = sweep.write_csv(std::io::BufWriter::new(file)) {
            eprintln!("error: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        if let Some(mpath) = &opt.metrics_out {
            // Per-rate matching records, in sweep order: deterministic for
            // any --jobs value because each point's stats are.
            let mut doc = String::from("{\"sweep\":[");
            for (i, point) in sweep.points().iter().enumerate() {
                if i > 0 {
                    doc.push(',');
                }
                doc.push_str(&format!(
                    "{{\"rate\":{},\"matching\":{}}}",
                    point.rate,
                    point.stats.matching().to_json()
                ));
            }
            doc.push_str("]}");
            if let Err(e) = std::fs::write(mpath, doc) {
                eprintln!("error: writing {mpath}: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote per-rate matching metrics to {mpath}");
        }
        if let Some(prof) = sweep.profile() {
            let breakdown = prof.breakdown();
            if let Some(ppath) = &opt.profile_out {
                if let Err(e) = std::fs::write(ppath, breakdown.to_json()) {
                    eprintln!("error: writing {ppath}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("wrote sweep phase breakdown to {ppath}");
            }
            print!("{}", breakdown.render());
        }
        println!(
            "wrote {} sweep points to {path} (saturation {:.4} pkt/node/cycle)",
            sweep.len(),
            sweep.saturation_throughput()
        );
        return ExitCode::SUCCESS;
    }

    let mut sim = match NetworkSim::build_with_pattern(cfg, opt.pattern.clone()) {
        Ok(sim) => sim,
        Err(e) => {
            eprintln!("error: invalid configuration: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(weights) = &shard_weights {
        sim.set_shard_weights(weights);
    }
    vix::telemetry::info!(
        "vixsim: {:?} / {} / {} traffic @ {} pkt/cycle/node, {} VCs, {} virtual input(s)",
        opt.topology,
        opt.allocator.label(),
        opt.pattern.label(),
        opt.rate,
        opt.vcs,
        k
    );
    let (stats, tel) = sim.run_with_telemetry();
    if let Some(path) = &opt.trace_out {
        let write = || -> std::io::Result<()> {
            let file = std::fs::File::create(path)?;
            let mut w = std::io::BufWriter::new(file);
            if path.ends_with(".json") {
                tel.trace_ring().write_chrome_trace(&mut w)?;
            } else {
                tel.trace_ring().write_jsonl(&mut w)?;
            }
            std::io::Write::flush(&mut w)
        };
        if let Err(e) = write() {
            eprintln!("error: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "wrote {} trace events to {path}{}",
            tel.trace_ring().len(),
            if tel.trace_ring().dropped() > 0 {
                format!(" ({} oldest dropped by the ring)", tel.trace_ring().dropped())
            } else {
                String::new()
            }
        );
    }
    if let Some(path) = &opt.metrics_out {
        let doc = format!(
            "{{\"matching\":{},\"registry\":{}}}",
            stats.matching().to_json(),
            tel.registry().to_json()
        );
        if let Err(e) = std::fs::write(path, doc) {
            eprintln!("error: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote metrics to {path}");
    }
    if let Some(prof) = tel.profiler() {
        if let Some(path) = &opt.profile_out {
            let write = || -> std::io::Result<()> {
                let file = std::fs::File::create(path)?;
                let mut w = std::io::BufWriter::new(file);
                if path.ends_with(".json") {
                    prof.write_chrome_trace(&mut w)?;
                } else {
                    prof.write_spans_jsonl(&mut w)?;
                }
                std::io::Write::flush(&mut w)
            };
            if let Err(e) = write() {
                eprintln!("error: writing {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!(
                "wrote engine profile to {path}{}",
                if prof.dropped_spans() > 0 {
                    format!(" ({} oldest spans dropped by the ring)", prof.dropped_spans())
                } else {
                    String::new()
                }
            );
        }
        if let Some(path) = &opt.heartbeat_out {
            let write = || -> std::io::Result<()> {
                let file = std::fs::File::create(path)?;
                let mut w = std::io::BufWriter::new(file);
                prof.write_health_jsonl(&mut w)?;
                std::io::Write::flush(&mut w)
            };
            if let Err(e) = write() {
                eprintln!("error: writing {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote {} heartbeats to {path}", prof.heartbeats().len());
        }
        print!("{}", prof.breakdown().render());
    }
    println!("  offered   {:.4} pkt/node/cycle", stats.offered_packets_per_node_cycle());
    println!("  accepted  {:.4} pkt/node/cycle ({:.4} flits/node/cycle)",
        stats.accepted_packets_per_node_cycle(), stats.accepted_flits_per_node_cycle());
    println!("  latency   avg {:.1}  p50 {}  p99 {}  max {} cycles",
        stats.avg_packet_latency(),
        stats.median_packet_latency().unwrap_or(0),
        stats.p99_packet_latency().unwrap_or(0),
        stats.max_packet_latency());
    println!("  fairness  max/min = {:.2}", stats.fairness_ratio());
    println!(
        "  matching  efficiency {:.4} ({} grants / {} bound over {} allocation cycles)",
        stats.matching().efficiency(),
        stats.matching().grants,
        stats.matching().match_bound,
        stats.matching().cycles
    );
    println!("  packets   {} delivered over {} measured cycles",
        stats.packets_ejected(), stats.measured_cycles());
    ExitCode::SUCCESS
}
