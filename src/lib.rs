//! # VIX — Virtual Input Crossbars for Efficient Switch Allocation
//!
//! A from-scratch, cycle-accurate network-on-chip simulation stack
//! reproducing *VIX: Virtual Input Crossbar for Efficient Switch
//! Allocation* (Rao et al., DAC 2014).
//!
//! This facade crate re-exports the workspace:
//!
//! * [`core`] — flits, packets, configs, request/grant sets,
//!   the VC → virtual-input partition.
//! * [`arbiter`] — round-robin / matrix arbiters.
//! * [`alloc`] — switch allocators: input-first separable,
//!   VIX, wavefront, augmented-path maximum matching, packet chaining,
//!   iSLIP, and the ideal VC-level matcher.
//! * [`topology`] — mesh, concentrated mesh, flattened
//!   butterfly with lookahead dimension-order routing.
//! * [`router`] — the 3-stage speculative VC router
//!   micro-architecture with credit-based wormhole flow control.
//! * [`sim`] — the network simulator, statistics, and the
//!   single-router allocation-efficiency harness.
//! * [`telemetry`] — flit-lifecycle tracing (JSONL + Chrome
//!   trace-event exporters), the zero-overhead metrics registry, and the
//!   allocator matching-efficiency record.
//! * [`traffic`] — synthetic traffic patterns.
//! * [`delay`] — 45 nm-calibrated analytical circuit delay
//!   models (Tables 1 and 3 of the paper).
//! * [`power`] — the event-energy model (Fig. 11).
//! * [`manycore`] — the trace-driven 64-core CMP substrate
//!   (Table 4).
//!
//! # Quickstart
//!
//! ```
//! use vix::prelude::*;
//!
//! // 8x8 mesh, uniform random traffic, baseline vs VIX allocation.
//! let base = NetworkConfig::paper_default(TopologyKind::Mesh, AllocatorKind::InputFirst);
//! let cfg = SimConfig::new(base, 0.02).with_windows(200, 1000, 500);
//! let stats = NetworkSim::build(cfg)?.run();
//! assert!(stats.avg_packet_latency() > 0.0);
//! # Ok::<(), vix::ConfigError>(())
//! ```

pub use vix_alloc as alloc;
pub use vix_arbiter as arbiter;
pub use vix_core as core;
pub use vix_delay as delay;
pub use vix_manycore as manycore;
pub use vix_power as power;
pub use vix_router as router;
pub use vix_sim as sim;
pub use vix_telemetry as telemetry;
pub use vix_topology as topology;
pub use vix_traffic as traffic;

pub use vix_core::{
    ActivityCounters, AllocatorKind, ConfigError, Cycle, Flit, FlitKind, NetworkConfig, NodeId,
    PacketDescriptor, PacketId, PipelineKind, PortId, RouterConfig, RouterId, SimConfig,
    TelemetrySettings, TopologyKind, VcId, VirtualInputId, VirtualInputs, VixPartition,
};

/// Convenient glob import for examples and tests.
pub mod prelude {
    pub use vix_alloc::{build_allocator, SwitchAllocator};
    pub use vix_core::{
        AllocatorKind, ConfigError, NetworkConfig, RouterConfig, SimConfig, TelemetrySettings,
        TopologyKind, VirtualInputs,
    };
    pub use vix_sim::{LoadSweep, NetworkSim, NetworkStats, SingleRouterHarness};
    pub use vix_telemetry::{MatchingSummary, TelemetrySink};
    pub use vix_topology::Topology;
    pub use vix_traffic::TrafficPattern;
}
