//! A shard worker that panics mid-cycle must not deadlock the run.
//!
//! Before the spin-barrier rewrite, a panicking worker simply never
//! arrived at the cycle barrier and the coordinator (plus every other
//! shard) blocked in `Barrier::wait` forever. The sense-reversing
//! [`vix::sim::SpinBarrier`] is poisoned from a panic guard instead, so
//! survivors unwind and the original panic propagates out of
//! `run_cycles` as a clean re-thrown join failure.
//!
//! The panic is injected with the test-only `VIX_SHARD_PANIC_AT`
//! environment variable (`cycle:shard`, read once per sharded stretch).
//! This file is its own integration-test binary — and therefore its own
//! process — because the variable is process-global; keeping it out of
//! the other suites' processes means it cannot perturb them even though
//! the Rust test harness runs tests concurrently.

use vix::prelude::*;

fn config() -> SimConfig {
    let mut network =
        NetworkConfig::paper_default(TopologyKind::Mesh, AllocatorKind::Vix);
    network.nodes = 16;
    SimConfig::new(network, 0.08)
        .with_windows(100, 400, 100)
        .with_seed(0xBAD)
        .with_shards(4)
}

/// One test, not two: the injection variable is process-global, so the
/// panic phase and the clean-reuse phase must run sequentially.
#[test]
fn worker_panic_propagates_instead_of_deadlocking() {
    // Worker 2 dies at cycle 50, mid-stretch: the coordinator is
    // pipelined one cycle ahead and the other three shards are spinning
    // at the cycle barrier when the poison lands.
    std::env::set_var("VIX_SHARD_PANIC_AT", "50:2");
    let result = std::panic::catch_unwind(|| {
        let mut sim = NetworkSim::build(config()).unwrap();
        sim.run_cycles(200);
    });
    std::env::remove_var("VIX_SHARD_PANIC_AT");
    let payload = result.expect_err("injected worker panic must propagate");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_else(|| "<non-string panic payload>".to_owned());
    assert!(
        msg.contains("injected shard panic"),
        "propagated panic should be the worker's own payload, got: {msg}"
    );

    // Same process, after the variable is gone: the engine must be
    // fully reusable (each stretch builds a fresh barrier, so the
    // poison cannot leak into later runs) and still bit-identical.
    let mut sim = NetworkSim::build(config()).unwrap();
    sim.run_cycles(200);
    let mut serial = NetworkSim::build(config().with_shards(1)).unwrap();
    serial.run_cycles(200);
    assert_eq!(
        sim.stats(),
        serial.stats(),
        "sharded run after a panic test must still be bit-identical"
    );
}
