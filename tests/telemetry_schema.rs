//! Golden-schema test for the trace exporters.
//!
//! Runs a 2×2 mesh for 200 cycles with tracing enabled, then:
//!
//! - validates every JSONL line against the per-kind schema documented in
//!   `vix_telemetry::trace` (exact key set, correct value types), and
//! - checks the Chrome trace export is well-formed JSON whose instant
//!   events have monotonically non-decreasing `ts` on every `(pid, tid)`
//!   track.
//!
//! The schema is a contract with external tooling (Perfetto, jq
//! pipelines); this test pins it so a field rename or a sentinel leaking
//! into the output is a test failure, not a downstream surprise.

use std::collections::HashMap;

use vix::prelude::*;
use vix::telemetry::json::{self, JsonValue};
use vix::telemetry::{TraceEventKind, TraceRing};

/// Builds and steps a 2×2 mesh for 200 cycles with tracing on, returning
/// the sink.
fn traced_run() -> TelemetrySink {
    let mut network = NetworkConfig::paper_default(TopologyKind::Mesh, AllocatorKind::Vix);
    network.nodes = 4; // 2×2 mesh
    let telemetry = TelemetrySettings::disabled().with_tracing(true).with_metrics(true);
    let cfg = SimConfig::new(network, 0.1).with_windows(201, 1, 1).with_telemetry(telemetry);
    let mut sim = NetworkSim::build(cfg).expect("valid config");
    for _ in 0..200 {
        sim.step();
    }
    sim.into_telemetry()
}

/// The documented required-key set for each event kind, beyond the
/// always-present `cycle` and `event`. Must match the table in the
/// `vix_telemetry::trace` module docs.
fn required_keys(kind: &str) -> &'static [&'static str] {
    match kind {
        "Inject" => &["router", "port", "vc", "packet", "flit"],
        "VcAlloc" => &["router", "port", "vc", "out_port", "out_vc", "packet"],
        "SaRequest" => &["router", "port", "vc", "out_port", "packet", "speculative"],
        "SaGrant" => &["router", "port", "vc", "out_port", "packet"],
        "SwitchTraversal" => &["router", "port", "vc", "out_port", "packet", "flit"],
        "LinkTraversal" => &["router", "port", "vc", "packet", "flit"],
        "Eject" => &["router", "port", "vc", "packet", "flit"],
        "CreditReturn" => &["router", "port", "vc"],
        other => panic!("undocumented event kind {other:?}"),
    }
}

#[test]
fn jsonl_events_match_documented_schema() {
    let tel = traced_run();
    let ring: &TraceRing = tel.trace_ring();
    assert_eq!(ring.dropped(), 0, "200 cycles of a 2×2 mesh must fit the default ring");
    assert!(!ring.is_empty(), "a loaded 200-cycle run must record events");

    let mut out = Vec::new();
    ring.write_jsonl(&mut out).expect("write to Vec cannot fail");
    let text = String::from_utf8(out).expect("JSONL output is UTF-8");

    let mut kinds_seen: HashMap<String, usize> = HashMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let value = json::parse(line)
            .unwrap_or_else(|e| panic!("line {}: invalid JSON ({e}): {line}", lineno + 1));
        let members = value
            .as_object()
            .unwrap_or_else(|| panic!("line {}: not a JSON object: {line}", lineno + 1));

        value
            .get("cycle")
            .and_then(JsonValue::as_u64)
            .unwrap_or_else(|| panic!("line {}: missing/invalid `cycle`: {line}", lineno + 1));
        let kind = value
            .get("event")
            .and_then(JsonValue::as_str)
            .unwrap_or_else(|| panic!("line {}: missing/invalid `event`: {line}", lineno + 1))
            .to_owned();
        *kinds_seen.entry(kind.clone()).or_insert(0) += 1;

        let required = required_keys(&kind);
        for &key in required {
            let field = value
                .get(key)
                .unwrap_or_else(|| panic!("line {}: {kind} missing `{key}`: {line}", lineno + 1));
            let ok = match key {
                "speculative" => field.as_bool().is_some(),
                _ => field.as_u64().is_some(),
            };
            assert!(ok, "line {}: {kind} `{key}` has wrong type: {line}", lineno + 1);
        }
        // No undocumented keys: the object is exactly cycle + event +
        // the required set (sentinel-valued fields must stay omitted).
        assert_eq!(
            members.len(),
            2 + required.len(),
            "line {}: {kind} has extra keys beyond the documented schema: {line}",
            lineno + 1
        );
        for (key, _) in members {
            assert!(
                key == "cycle" || key == "event" || required.contains(&key.as_str()),
                "line {}: {kind} has undocumented key `{key}`: {line}",
                lineno + 1
            );
        }
    }

    // A loaded 200-cycle run must exercise the full lifecycle.
    for kind in TraceEventKind::ALL {
        assert!(
            kinds_seen.contains_key(kind.name()),
            "no {} event in 200 cycles (saw: {kinds_seen:?})",
            kind.name()
        );
    }
}

#[test]
fn chrome_trace_is_well_formed_with_monotone_tracks() {
    let tel = traced_run();

    let mut out = Vec::new();
    tel.trace_ring().write_chrome_trace(&mut out).expect("write to Vec cannot fail");
    let text = String::from_utf8(out).expect("Chrome trace output is UTF-8");

    let doc = json::parse(&text).expect("Chrome trace must be well-formed JSON");
    let events = doc
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .expect("top-level `traceEvents` array");
    assert!(!events.is_empty(), "a loaded run must export events");

    let mut last_ts: HashMap<(u64, u64), u64> = HashMap::new();
    let mut instants = 0usize;
    for ev in events {
        let ph = ev.get("ph").and_then(JsonValue::as_str).expect("every event has `ph`");
        let pid = ev.get("pid").and_then(JsonValue::as_u64).expect("every event has `pid`");
        let tid = ev.get("tid").and_then(JsonValue::as_u64).expect("every event has `tid`");
        match ph {
            "M" => {
                // Metadata record: names the router's track, no timestamp.
                assert_eq!(ev.get("name").and_then(JsonValue::as_str), Some("process_name"));
            }
            "i" => {
                instants += 1;
                ev.get("name").and_then(JsonValue::as_str).expect("instant event has `name`");
                let ts = ev.get("ts").and_then(JsonValue::as_u64).expect("instant event has `ts`");
                if let Some(&prev) = last_ts.get(&(pid, tid)) {
                    assert!(
                        ts >= prev,
                        "track (pid {pid}, tid {tid}): ts went backwards ({prev} -> {ts})"
                    );
                }
                last_ts.insert((pid, tid), ts);
            }
            other => panic!("unexpected phase {other:?} in Chrome trace"),
        }
    }
    assert!(instants > 0, "Chrome trace holds only metadata records");
    assert!(last_ts.keys().any(|&(pid, _)| pid > 0), "expected events from more than one router");
}
