//! Golden-schema test for the trace exporters.
//!
//! Runs a 2×2 mesh for 200 cycles with tracing enabled, then:
//!
//! - validates every JSONL line against the per-kind schema documented in
//!   `vix_telemetry::trace` (exact key set, correct value types), and
//! - checks the Chrome trace export is well-formed JSON whose instant
//!   events have monotonically non-decreasing `ts` on every `(pid, tid)`
//!   track.
//!
//! The schema is a contract with external tooling (Perfetto, jq
//! pipelines); this test pins it so a field rename or a sentinel leaking
//! into the output is a test failure, not a downstream surprise.
//!
//! The second half pins the engine self-profiling exports the same way
//! (DESIGN.md §7): span JSONL, heartbeat JSONL, the per-shard Chrome
//! trace, and the contract that profiling never perturbs results.

use std::collections::{HashMap, HashSet};

use vix::prelude::*;
use vix::telemetry::json::{self, JsonValue};
use vix::telemetry::{SpanKind, TraceEventKind, TraceRing};

/// Builds and steps a 2×2 mesh for 200 cycles with tracing on, returning
/// the sink.
fn traced_run() -> TelemetrySink {
    let mut network = NetworkConfig::paper_default(TopologyKind::Mesh, AllocatorKind::Vix);
    network.nodes = 4; // 2×2 mesh
    let telemetry = TelemetrySettings::disabled().with_tracing(true).with_metrics(true);
    let cfg = SimConfig::new(network, 0.1).with_windows(201, 1, 1).with_telemetry(telemetry);
    let mut sim = NetworkSim::build(cfg).expect("valid config");
    for _ in 0..200 {
        sim.step();
    }
    sim.into_telemetry()
}

/// The documented required-key set for each event kind, beyond the
/// always-present `cycle` and `event`. Must match the table in the
/// `vix_telemetry::trace` module docs.
fn required_keys(kind: &str) -> &'static [&'static str] {
    match kind {
        "Inject" => &["router", "port", "vc", "packet", "flit"],
        "VcAlloc" => &["router", "port", "vc", "out_port", "out_vc", "packet"],
        "SaRequest" => &["router", "port", "vc", "out_port", "packet", "speculative"],
        "SaGrant" => &["router", "port", "vc", "out_port", "packet"],
        "SwitchTraversal" => &["router", "port", "vc", "out_port", "packet", "flit"],
        "LinkTraversal" => &["router", "port", "vc", "packet", "flit"],
        "Eject" => &["router", "port", "vc", "packet", "flit"],
        "CreditReturn" => &["router", "port", "vc"],
        other => panic!("undocumented event kind {other:?}"),
    }
}

#[test]
fn jsonl_events_match_documented_schema() {
    let tel = traced_run();
    let ring: &TraceRing = tel.trace_ring();
    assert_eq!(ring.dropped(), 0, "200 cycles of a 2×2 mesh must fit the default ring");
    assert!(!ring.is_empty(), "a loaded 200-cycle run must record events");

    let mut out = Vec::new();
    ring.write_jsonl(&mut out).expect("write to Vec cannot fail");
    let text = String::from_utf8(out).expect("JSONL output is UTF-8");

    let mut kinds_seen: HashMap<String, usize> = HashMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let value = json::parse(line)
            .unwrap_or_else(|e| panic!("line {}: invalid JSON ({e}): {line}", lineno + 1));
        let members = value
            .as_object()
            .unwrap_or_else(|| panic!("line {}: not a JSON object: {line}", lineno + 1));

        value
            .get("cycle")
            .and_then(JsonValue::as_u64)
            .unwrap_or_else(|| panic!("line {}: missing/invalid `cycle`: {line}", lineno + 1));
        let kind = value
            .get("event")
            .and_then(JsonValue::as_str)
            .unwrap_or_else(|| panic!("line {}: missing/invalid `event`: {line}", lineno + 1))
            .to_owned();
        *kinds_seen.entry(kind.clone()).or_insert(0) += 1;

        let required = required_keys(&kind);
        for &key in required {
            let field = value
                .get(key)
                .unwrap_or_else(|| panic!("line {}: {kind} missing `{key}`: {line}", lineno + 1));
            let ok = match key {
                "speculative" => field.as_bool().is_some(),
                _ => field.as_u64().is_some(),
            };
            assert!(ok, "line {}: {kind} `{key}` has wrong type: {line}", lineno + 1);
        }
        // No undocumented keys: the object is exactly cycle + event +
        // the required set (sentinel-valued fields must stay omitted).
        assert_eq!(
            members.len(),
            2 + required.len(),
            "line {}: {kind} has extra keys beyond the documented schema: {line}",
            lineno + 1
        );
        for (key, _) in members {
            assert!(
                key == "cycle" || key == "event" || required.contains(&key.as_str()),
                "line {}: {kind} has undocumented key `{key}`: {line}",
                lineno + 1
            );
        }
    }

    // A loaded 200-cycle run must exercise the full lifecycle.
    for kind in TraceEventKind::ALL {
        assert!(
            kinds_seen.contains_key(kind.name()),
            "no {} event in 200 cycles (saw: {kinds_seen:?})",
            kind.name()
        );
    }
}

#[test]
fn chrome_trace_is_well_formed_with_monotone_tracks() {
    let tel = traced_run();

    let mut out = Vec::new();
    tel.trace_ring().write_chrome_trace(&mut out).expect("write to Vec cannot fail");
    let text = String::from_utf8(out).expect("Chrome trace output is UTF-8");

    let doc = json::parse(&text).expect("Chrome trace must be well-formed JSON");
    let events = doc
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .expect("top-level `traceEvents` array");
    assert!(!events.is_empty(), "a loaded run must export events");

    let mut last_ts: HashMap<(u64, u64), u64> = HashMap::new();
    let mut instants = 0usize;
    for ev in events {
        let ph = ev.get("ph").and_then(JsonValue::as_str).expect("every event has `ph`");
        let pid = ev.get("pid").and_then(JsonValue::as_u64).expect("every event has `pid`");
        let tid = ev.get("tid").and_then(JsonValue::as_u64).expect("every event has `tid`");
        match ph {
            "M" => {
                // Metadata record: names the router's track, no timestamp.
                assert_eq!(ev.get("name").and_then(JsonValue::as_str), Some("process_name"));
            }
            "i" => {
                instants += 1;
                ev.get("name").and_then(JsonValue::as_str).expect("instant event has `name`");
                let ts = ev.get("ts").and_then(JsonValue::as_u64).expect("instant event has `ts`");
                if let Some(&prev) = last_ts.get(&(pid, tid)) {
                    assert!(
                        ts >= prev,
                        "track (pid {pid}, tid {tid}): ts went backwards ({prev} -> {ts})"
                    );
                }
                last_ts.insert((pid, tid), ts);
            }
            other => panic!("unexpected phase {other:?} in Chrome trace"),
        }
    }
    assert!(instants > 0, "Chrome trace holds only metadata records");
    assert!(last_ts.keys().any(|&(pid, _)| pid > 0), "expected events from more than one router");
}

/// Builds and runs a 16×16 mesh across `shards` shards with profiling
/// and a heartbeat every 100 cycles, returning the sink.
fn profiled_sharded_run(shards: usize) -> TelemetrySink {
    let mut network = NetworkConfig::paper_default(TopologyKind::Mesh, AllocatorKind::Vix);
    network.nodes = 256; // 16×16 mesh — the acceptance-criteria shape
    let telemetry = TelemetrySettings::disabled().with_heartbeat(100);
    let cfg = SimConfig::new(network, 0.05)
        .with_windows(100, 150, 50)
        .with_shards(shards)
        .with_telemetry(telemetry);
    let sim = NetworkSim::build(cfg).expect("valid config");
    sim.run_with_telemetry().1
}

/// The pinned key set of one span JSONL line.
const SPAN_KEYS: [&str; 5] = ["span", "track", "cycle", "start_ns", "dur_ns"];

#[test]
fn profile_span_jsonl_matches_documented_schema() {
    let tel = profiled_sharded_run(1);
    let prof = tel.profiler().expect("profiling was enabled");

    let mut out = Vec::new();
    prof.write_spans_jsonl(&mut out).expect("write to Vec cannot fail");
    let text = String::from_utf8(out).expect("span JSONL output is UTF-8");
    assert!(!text.is_empty(), "a profiled run must record spans");

    let span_names: HashSet<&str> = SpanKind::ALL.iter().map(|k| k.name()).collect();
    let mut seen: HashSet<String> = HashSet::new();
    for (lineno, line) in text.lines().enumerate() {
        let value = json::parse(line)
            .unwrap_or_else(|e| panic!("line {}: invalid JSON ({e}): {line}", lineno + 1));
        let members = value
            .as_object()
            .unwrap_or_else(|| panic!("line {}: not a JSON object: {line}", lineno + 1));
        assert_eq!(
            members.len(),
            SPAN_KEYS.len(),
            "line {}: key set drifted from the pinned schema: {line}",
            lineno + 1
        );
        for key in SPAN_KEYS {
            assert!(value.get(key).is_some(), "line {}: missing `{key}`: {line}", lineno + 1);
        }
        let span = value.get("span").and_then(JsonValue::as_str).expect("span is a string");
        assert!(span_names.contains(span), "line {}: unknown span kind {span:?}", lineno + 1);
        seen.insert(span.to_owned());
        assert_eq!(
            value.get("track").and_then(JsonValue::as_str),
            Some("engine"),
            "a serial run records only the engine track"
        );
        for key in ["cycle", "start_ns", "dur_ns"] {
            assert!(
                value.get(key).and_then(JsonValue::as_u64).is_some(),
                "line {}: `{key}` must be an unsigned integer: {line}",
                lineno + 1
            );
        }
    }
    for kind in [SpanKind::TrafficGen, SpanKind::SourceInject, SpanKind::RouterStep] {
        assert!(seen.contains(kind.name()), "no {} span recorded (saw {seen:?})", kind.name());
    }
}

/// The pinned key sets of one heartbeat JSONL line and its `shards`
/// entries.
const HEARTBEAT_KEYS: [&str; 10] = [
    "cycle",
    "wall_ns",
    "interval_cycles",
    "cycles_per_sec",
    "router_steps",
    "active_routers_avg",
    "wake_depth",
    "buffered_flits",
    "imbalance_pct",
    "shards",
];
const SHARD_BEAT_KEYS: [&str; 4] = ["shard", "busy_ns", "barrier_ns", "busy_ratio"];

fn assert_heartbeat_schema(text: &str, expect_shards: usize) {
    assert!(!text.is_empty(), "a heartbeat-enabled run must emit heartbeats");
    for (lineno, line) in text.lines().enumerate() {
        let value = json::parse(line)
            .unwrap_or_else(|e| panic!("line {}: invalid JSON ({e}): {line}", lineno + 1));
        let members = value
            .as_object()
            .unwrap_or_else(|| panic!("line {}: not a JSON object: {line}", lineno + 1));
        assert_eq!(
            members.len(),
            HEARTBEAT_KEYS.len(),
            "line {}: key set drifted from the pinned schema: {line}",
            lineno + 1
        );
        for key in HEARTBEAT_KEYS {
            assert!(value.get(key).is_some(), "line {}: missing `{key}`: {line}", lineno + 1);
        }
        for key in ["cycle", "wall_ns", "interval_cycles", "router_steps", "wake_depth",
            "buffered_flits"]
        {
            assert!(
                value.get(key).and_then(JsonValue::as_u64).is_some(),
                "line {}: `{key}` must be an unsigned integer: {line}",
                lineno + 1
            );
        }
        for key in ["cycles_per_sec", "active_routers_avg", "imbalance_pct"] {
            assert!(
                value.get(key).and_then(JsonValue::as_f64).is_some(),
                "line {}: `{key}` must be a number: {line}",
                lineno + 1
            );
        }
        let shards =
            value.get("shards").and_then(JsonValue::as_array).expect("shards is an array");
        assert_eq!(shards.len(), expect_shards, "line {}: wrong shard count", lineno + 1);
        for beat in shards {
            let beat_members = beat.as_object().expect("shard beat is an object");
            assert_eq!(
                beat_members.len(),
                SHARD_BEAT_KEYS.len(),
                "line {}: shard-beat key set drifted: {line}",
                lineno + 1
            );
            for key in SHARD_BEAT_KEYS {
                assert!(
                    beat.get(key).and_then(JsonValue::as_f64).is_some(),
                    "line {}: shard beat missing numeric `{key}`: {line}",
                    lineno + 1
                );
            }
        }
    }
}

#[test]
fn heartbeat_jsonl_matches_documented_schema_serial_and_sharded() {
    // Serial: the engine publishes one synthetic shard beat per interval.
    let tel = profiled_sharded_run(1);
    let mut out = Vec::new();
    tel.profiler()
        .expect("profiling was enabled")
        .write_health_jsonl(&mut out)
        .expect("write to Vec cannot fail");
    assert_heartbeat_schema(&String::from_utf8(out).expect("UTF-8"), 1);

    // Sharded: one real beat per shard, sampled off the health board.
    let tel = profiled_sharded_run(2);
    let mut out = Vec::new();
    tel.profiler()
        .expect("profiling was enabled")
        .write_health_jsonl(&mut out)
        .expect("write to Vec cannot fail");
    assert_heartbeat_schema(&String::from_utf8(out).expect("UTF-8"), 2);
}

#[test]
fn profiled_sharded_chrome_trace_has_per_shard_tracks() {
    let tel = profiled_sharded_run(2);
    let prof = tel.profiler().expect("profiling was enabled");

    let mut out = Vec::new();
    prof.write_chrome_trace(&mut out).expect("write to Vec cannot fail");
    let text = String::from_utf8(out).expect("Chrome trace output is UTF-8");

    let doc = json::parse(&text).expect("Chrome trace must be well-formed JSON");
    let events = doc
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .expect("top-level `traceEvents` array");

    let mut track_names: HashMap<u64, String> = HashMap::new();
    let mut span_tids: HashSet<u64> = HashSet::new();
    let mut counters = 0usize;
    for ev in events {
        let ph = ev.get("ph").and_then(JsonValue::as_str).expect("every event has `ph`");
        let tid = ev.get("tid").and_then(JsonValue::as_u64).expect("every event has `tid`");
        match ph {
            "M" => {
                let name = ev.get("name").and_then(JsonValue::as_str).expect("metadata name");
                if name == "thread_name" {
                    let value = ev
                        .get("args")
                        .and_then(|a| a.get("name"))
                        .and_then(JsonValue::as_str)
                        .expect("thread_name metadata carries args.name");
                    track_names.insert(tid, value.to_owned());
                }
            }
            "X" => {
                // Complete event: needs ts + dur for Perfetto to lay the
                // flame track out.
                assert!(ev.get("ts").and_then(JsonValue::as_f64).is_some(), "X event has ts");
                assert!(ev.get("dur").and_then(JsonValue::as_f64).is_some(), "X event has dur");
                span_tids.insert(tid);
            }
            "C" => counters += 1,
            other => panic!("unexpected phase {other:?} in profile trace"),
        }
    }
    assert_eq!(track_names.get(&1).map(String::as_str), Some("shard0"));
    assert_eq!(track_names.get(&2).map(String::as_str), Some("shard1"));
    assert!(span_tids.contains(&1) && span_tids.contains(&2), "both shards must record spans");
    assert!(span_tids.contains(&0), "the coordinator records the engine track");
    assert!(counters > 0, "heartbeats must export counter tracks");
}

#[test]
fn profiling_never_perturbs_results() {
    let build = |profiling: bool, shards: usize| {
        let mut network = NetworkConfig::paper_default(TopologyKind::Mesh, AllocatorKind::Vix);
        network.nodes = 64;
        let telemetry = if profiling {
            TelemetrySettings::disabled().with_heartbeat(50)
        } else {
            TelemetrySettings::disabled()
        };
        let cfg = SimConfig::new(network, 0.08)
            .with_windows(100, 200, 100)
            .with_shards(shards)
            .with_telemetry(telemetry);
        NetworkSim::build(cfg).expect("valid config").run()
    };
    // The profiler only reads the wall clock, so stats must stay
    // bit-identical with it on — serial and sharded.
    assert_eq!(build(false, 1), build(true, 1), "serial run perturbed by profiling");
    assert_eq!(build(false, 4), build(true, 4), "sharded run perturbed by profiling");
}

#[test]
fn disabled_profiling_records_nothing() {
    let mut network = NetworkConfig::paper_default(TopologyKind::Mesh, AllocatorKind::Vix);
    network.nodes = 16;
    let cfg = SimConfig::new(network, 0.05).with_windows(50, 100, 50);
    let sim = NetworkSim::build(cfg).expect("valid config");
    let (_, tel) = sim.run_with_telemetry();
    assert!(!tel.profiling(), "profiling must default to off");
    assert!(tel.profiler().is_none(), "no profiler may exist on a default run");
}
