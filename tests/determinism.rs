//! Reproducibility: identical seeds must give bit-identical results at
//! every level of the stack — the property that makes the benchmark
//! harness's numbers citable.

use vix::manycore::{ManycoreSystem, Mix};
use vix::prelude::*;

#[test]
fn network_runs_are_bit_identical() {
    let make = || {
        let network = NetworkConfig::paper_default(TopologyKind::Mesh, AllocatorKind::Vix);
        let cfg = SimConfig::new(network, 0.08).with_windows(300, 1_200, 800).with_seed(1234);
        NetworkSim::build(cfg).unwrap().run()
    };
    let a = make();
    let b = make();
    assert_eq!(a.packets_ejected(), b.packets_ejected());
    assert_eq!(a.flits_ejected(), b.flits_ejected());
    assert_eq!(a.per_source_packets(), b.per_source_packets());
    assert_eq!(a.avg_packet_latency(), b.avg_packet_latency());
    assert_eq!(a.activity(), b.activity());
}

#[test]
fn seeds_actually_matter() {
    let run = |seed| {
        let network = NetworkConfig::paper_default(TopologyKind::Mesh, AllocatorKind::InputFirst);
        let cfg = SimConfig::new(network, 0.08).with_windows(300, 1_200, 800).with_seed(seed);
        NetworkSim::build(cfg).unwrap().run().packets_ejected()
    };
    assert_ne!(run(1), run(2), "different seeds must explore different traffic");
}

#[test]
fn manycore_runs_are_bit_identical() {
    let mix = &Mix::table4()[1];
    let a = ManycoreSystem::build(mix, AllocatorKind::InputFirst, 99).run_windows(200, 800);
    let b = ManycoreSystem::build(mix, AllocatorKind::InputFirst, 99).run_windows(200, 800);
    assert_eq!(a, b);
}

#[test]
fn parallel_sweeps_match_serial_point_for_point() {
    let sweep = |jobs: usize| {
        let network = NetworkConfig::paper_default(TopologyKind::Mesh, AllocatorKind::Vix);
        let base = SimConfig::new(network, 0.0).with_windows(300, 1_200, 800).with_seed(9);
        LoadSweep::new(base)
            .with_rates(&[0.02, 0.05, 0.08, 0.10])
            .with_replications(2)
            .with_jobs(jobs)
            .run()
            .unwrap()
            .points()
            .to_vec()
    };
    let serial = sweep(1);
    for jobs in [4, 0] {
        let parallel = sweep(jobs);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.rate, p.rate, "jobs={jobs} must preserve point order");
            let (a, b) = (&s.stats, &p.stats);
            assert_eq!(a.packets_ejected(), b.packets_ejected(), "jobs={jobs}");
            assert_eq!(a.flits_ejected(), b.flits_ejected(), "jobs={jobs}");
            assert_eq!(a.per_source_packets(), b.per_source_packets(), "jobs={jobs}");
            assert_eq!(a.avg_packet_latency(), b.avg_packet_latency(), "jobs={jobs}");
            assert_eq!(a.activity(), b.activity(), "jobs={jobs}");
        }
    }
}

#[test]
fn single_router_harness_is_deterministic() {
    use vix::alloc::build_allocator;
    use vix::RouterConfig;
    let run = || {
        let router = RouterConfig::paper_default(5);
        SingleRouterHarness::new(build_allocator(AllocatorKind::Wavefront, &router), 5, 6, 77)
            .run(2_000)
            .flits_per_cycle()
    };
    assert_eq!(run(), run());
}
