//! Reproducibility: identical seeds must give bit-identical results at
//! every level of the stack — the property that makes the benchmark
//! harness's numbers citable.

use vix::manycore::{ManycoreSystem, Mix};
use vix::prelude::*;

#[test]
fn network_runs_are_bit_identical() {
    let make = || {
        let network = NetworkConfig::paper_default(TopologyKind::Mesh, AllocatorKind::Vix);
        let cfg = SimConfig::new(network, 0.08).with_windows(300, 1_200, 800).with_seed(1234);
        NetworkSim::build(cfg).unwrap().run()
    };
    let a = make();
    let b = make();
    assert_eq!(a.packets_ejected(), b.packets_ejected());
    assert_eq!(a.flits_ejected(), b.flits_ejected());
    assert_eq!(a.per_source_packets(), b.per_source_packets());
    assert_eq!(a.avg_packet_latency(), b.avg_packet_latency());
    assert_eq!(a.activity(), b.activity());
}

#[test]
fn seeds_actually_matter() {
    let run = |seed| {
        let network = NetworkConfig::paper_default(TopologyKind::Mesh, AllocatorKind::InputFirst);
        let cfg = SimConfig::new(network, 0.08).with_windows(300, 1_200, 800).with_seed(seed);
        NetworkSim::build(cfg).unwrap().run().packets_ejected()
    };
    assert_ne!(run(1), run(2), "different seeds must explore different traffic");
}

#[test]
fn manycore_runs_are_bit_identical() {
    let mix = &Mix::table4()[1];
    let a = ManycoreSystem::build(mix, AllocatorKind::InputFirst, 99).run_windows(200, 800);
    let b = ManycoreSystem::build(mix, AllocatorKind::InputFirst, 99).run_windows(200, 800);
    assert_eq!(a, b);
}

#[test]
fn parallel_sweeps_match_serial_point_for_point() {
    let sweep = |jobs: usize| {
        let network = NetworkConfig::paper_default(TopologyKind::Mesh, AllocatorKind::Vix);
        let base = SimConfig::new(network, 0.0).with_windows(300, 1_200, 800).with_seed(9);
        LoadSweep::new(base)
            .with_rates(&[0.02, 0.05, 0.08, 0.10])
            .with_replications(2)
            .with_jobs(jobs)
            .run()
            .unwrap()
            .points()
            .to_vec()
    };
    let serial = sweep(1);
    for jobs in [4, 0] {
        let parallel = sweep(jobs);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.rate, p.rate, "jobs={jobs} must preserve point order");
            let (a, b) = (&s.stats, &p.stats);
            assert_eq!(a.packets_ejected(), b.packets_ejected(), "jobs={jobs}");
            assert_eq!(a.flits_ejected(), b.flits_ejected(), "jobs={jobs}");
            assert_eq!(a.per_source_packets(), b.per_source_packets(), "jobs={jobs}");
            assert_eq!(a.avg_packet_latency(), b.avg_packet_latency(), "jobs={jobs}");
            assert_eq!(a.activity(), b.activity(), "jobs={jobs}");
        }
    }
}

#[test]
fn sweeps_are_invariant_over_the_shards_x_jobs_grid() {
    // The two parallelism axes — `jobs` worker threads across sweep
    // points, `shards` worker threads inside each simulation — must
    // compose without leaking into the results: every (shards, jobs)
    // combination reproduces the (1, 1) sweep bit-for-bit, for every
    // allocator configuration.
    let allocators = [
        AllocatorKind::InputFirst,
        AllocatorKind::OutputFirst,
        AllocatorKind::Wavefront,
        AllocatorKind::AugmentingPath,
        AllocatorKind::Vix,
        AllocatorKind::WavefrontVix,
        AllocatorKind::PacketChaining,
        AllocatorKind::Islip(2),
    ];
    for kind in allocators {
        let sweep = |shards: usize, jobs: usize| {
            let mut network = NetworkConfig::paper_default(TopologyKind::Mesh, kind);
            network.nodes = 16;
            let base = SimConfig::new(network, 0.0)
                .with_windows(200, 600, 400)
                .with_seed(0xD5EED)
                .with_shards(shards);
            LoadSweep::new(base)
                .with_rates(&[0.03, 0.06])
                .with_jobs(jobs)
                .run()
                .unwrap()
                .points()
                .to_vec()
        };
        let reference = sweep(1, 1);
        for shards in [2, 4] {
            for jobs in [1, 2] {
                assert_eq!(
                    sweep(shards, jobs),
                    reference,
                    "{kind:?}: shards={shards} x jobs={jobs} leaked into sweep results"
                );
            }
        }
    }
}

/// FNV-1a over a stream of `u64` words. Hand-rolled because the golden
/// constants below must survive Rust upgrades, and `DefaultHasher`'s
/// output is explicitly not guaranteed stable across releases.
fn fnv1a(h: &mut u64, word: u64) {
    for byte in word.to_le_bytes() {
        *h ^= u64::from(byte);
        *h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
}

/// Drives one allocator for 500 cycles of pseudo-random request traffic
/// (speculative bits, ages, and packet-chaining feedback included) and
/// hashes the full grant trace: cycle number plus every granted
/// `(port, vc, out_port)` triple in emission order.
fn grant_trace_hash(kind: vix::AllocatorKind) -> u64 {
    use vix::alloc::build_allocator;
    use vix::core::{
        AllocatorKind, PortId, RequestSet, RouterConfig, SwitchRequest, VcId, VirtualInputs,
    };
    use vix_rng::{rngs::StdRng, Rng, SeedableRng};

    const PORTS: usize = 5;
    const VCS: usize = 6;
    let mut router = RouterConfig::paper_default(PORTS);
    if matches!(kind, AllocatorKind::Vix | AllocatorKind::WavefrontVix) {
        router = router.with_virtual_inputs(VirtualInputs::PerPort(2));
    }
    let mut alloc = build_allocator(kind, &router);
    let mut rng = StdRng::seed_from_u64(0x51C4_B0A7);
    let mut requests = RequestSet::new(PORTS, VCS);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for cycle in 0..500u64 {
        requests.clear();
        for port in 0..PORTS {
            for vc in 0..VCS {
                if rng.gen_range(0..100_u64) < 55 {
                    requests.push(SwitchRequest {
                        port: PortId(port),
                        vc: VcId(vc),
                        out_port: PortId(rng.gen_range(0..PORTS)),
                        speculative: rng.gen_range(0..4_u64) == 0,
                        age: rng.gen_range(0..16_u64),
                    });
                }
            }
        }
        let grants = alloc.allocate(&requests);
        grants.validate_against(&requests, alloc.partition()).expect("grants must be legal");
        fnv1a(&mut h, cycle);
        for g in grants.iter() {
            fnv1a(&mut h, g.port.0 as u64);
            fnv1a(&mut h, g.vc.0 as u64);
            fnv1a(&mut h, g.out_port.0 as u64);
        }
        alloc.observe_traversals(&grants);
    }
    h
}

/// Golden grant traces recorded from the pre-refactor allocators (the
/// `allocate(&RequestSet) -> GrantSet` era). The buffer-reuse refactor —
/// `allocate_into` plus owned scratch — must reproduce every trace
/// bit-for-bit; a mismatch here means allocator *behaviour* changed, not
/// just its memory profile.
#[test]
fn grant_traces_match_goldens() {
    use vix::AllocatorKind;
    let goldens: &[(AllocatorKind, u64)] = &[
        (AllocatorKind::InputFirst, 0x2D7B_8B20_18DD_3E10),
        (AllocatorKind::OutputFirst, 0x8B40_4CBC_BCF9_F828),
        (AllocatorKind::Wavefront, 0x0AB1_07F0_3969_6126),
        (AllocatorKind::AugmentingPath, 0xDFE1_36EF_FB69_7997),
        (AllocatorKind::Vix, 0x5964_013F_FFC2_7D9B),
        (AllocatorKind::WavefrontVix, 0x330B_6E69_AF93_401D),
        (AllocatorKind::PacketChaining, 0x78FA_F35F_1509_8A3B),
        (AllocatorKind::Islip(2), 0xA2C7_4231_3DFD_01A2),
    ];
    for &(kind, expected) in goldens {
        let got = grant_trace_hash(kind);
        assert_eq!(got, expected, "{kind:?}: grant trace diverged from recorded golden");
    }
}

#[test]
fn single_router_harness_is_deterministic() {
    use vix::alloc::build_allocator;
    use vix::RouterConfig;
    let run = || {
        let router = RouterConfig::paper_default(5);
        SingleRouterHarness::new(build_allocator(AllocatorKind::Wavefront, &router), 5, 6, 77)
            .run(2_000)
            .flits_per_cycle()
    };
    assert_eq!(run(), run());
}
