//! Allocation-regression gate for the steady-state hot path.
//!
//! A counting `GlobalAlloc` wraps the system allocator; after a warmup
//! phase that grows every reusable buffer (router request/grant sets,
//! allocator scratch, link pipes, source queues) to its steady-state size,
//! clocking the network must stay off the heap. The gate is deliberately
//! loose (`< nodes` allocations over 1,000 cycles) so that rare amortised
//! growth — e.g. the ejection log doubling — cannot flake the test, while
//! a per-cycle or per-router allocation (≥ 1,000) fails it by orders of
//! magnitude.
//!
//! This lives in its own integration-test binary because the
//! `#[global_allocator]` attribute is process-wide.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use vix::prelude::*;

/// System allocator wrapper that counts every `alloc`/`realloc` call.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations_in_steady_state(kind: AllocatorKind, telemetry: TelemetrySettings) -> u64 {
    let mut network = NetworkConfig::paper_default(TopologyKind::Mesh, kind);
    network.nodes = 64; // 8×8 mesh
    allocations_in_steady_state_for(network, telemetry)
}

fn allocations_in_steady_state_for(network: NetworkConfig, telemetry: TelemetrySettings) -> u64 {
    const WARMUP_CYCLES: usize = 500;
    const MEASURED_CYCLES: usize = 1_000;

    // Keep the whole run inside the sim's warmup window: traffic flows the
    // entire time and the measurement stats never record (their latency
    // log grows unboundedly by design — it is not part of the hot path).
    let cfg = SimConfig::new(network, 0.08)
        .with_windows((WARMUP_CYCLES + MEASURED_CYCLES + 1) as u64, 1, 1)
        .with_telemetry(telemetry);
    let mut sim = NetworkSim::build(cfg).expect("valid config");

    // Warmup: every reusable buffer reaches its steady-state capacity.
    for _ in 0..WARMUP_CYCLES {
        sim.step();
    }

    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    for _ in 0..MEASURED_CYCLES {
        sim.step();
    }
    let after = ALLOC_CALLS.load(Ordering::Relaxed);
    drop(sim);
    after - before
}

#[test]
fn wide_config_steady_state_stays_off_the_heap() {
    // 16 VCs with ideal virtual inputs on the mesh's 5-port router: 80
    // crossbar inputs, so every bitset row, arbiter mask, and matcher
    // adjacency row spans two 64-bit words. The multi-word scratch must be
    // preallocated exactly like the narrow case — same gate, same cycles.
    let mut network = NetworkConfig::paper_default(TopologyKind::Mesh, AllocatorKind::Vix);
    network.nodes = 64;
    network.router = network.router.with_vcs(16).with_virtual_inputs(VirtualInputs::Ideal);
    let allocs = allocations_in_steady_state_for(network, TelemetrySettings::disabled());
    assert!(
        allocs < 64,
        "{allocs} heap allocations in 1,000 steady-state cycles of an 8×8 mesh \
         with 80 crossbar inputs per router (gate: < 64)"
    );
}

#[test]
fn steady_state_network_steps_stay_off_the_heap() {
    for kind in [AllocatorKind::InputFirst, AllocatorKind::Vix] {
        let allocs = allocations_in_steady_state(kind, TelemetrySettings::disabled());
        assert!(
            allocs < 64,
            "{kind:?}: {allocs} heap allocations in 1,000 steady-state cycles \
             of an 8×8 mesh (gate: < 64)"
        );
    }
}

#[test]
fn ring_transport_recirculates_with_zero_allocations() {
    // The strict form of the gate, proving the slab/ring transport is
    // fully preallocated: with the ejection log drained into a reused
    // buffer every cycle (`take_ejections_into` keeps its capacity), 1,000
    // steady-state cycles — thousands of VC-slab pushes/pops and ring-pipe
    // wrap-arounds — must perform exactly ZERO heap allocations. The run
    // is seeded and deterministic, so the assertion cannot flake.
    const WARMUP_CYCLES: usize = 500;
    const MEASURED_CYCLES: usize = 1_000;
    for kind in [AllocatorKind::InputFirst, AllocatorKind::Vix] {
        let mut network = NetworkConfig::paper_default(TopologyKind::Mesh, kind);
        network.nodes = 64;
        let cfg = SimConfig::new(network, 0.08)
            .with_windows((WARMUP_CYCLES + MEASURED_CYCLES + 1) as u64, 1, 1)
            .with_telemetry(TelemetrySettings::disabled());
        let mut sim = NetworkSim::build(cfg).expect("valid config");

        let mut ejected = Vec::new();
        for _ in 0..WARMUP_CYCLES {
            sim.step();
            sim.take_ejections_into(&mut ejected);
            ejected.clear();
        }

        let before = ALLOC_CALLS.load(Ordering::Relaxed);
        for _ in 0..MEASURED_CYCLES {
            sim.step();
            sim.take_ejections_into(&mut ejected);
            ejected.clear();
        }
        let after = ALLOC_CALLS.load(Ordering::Relaxed);
        assert_eq!(
            after - before,
            0,
            "{kind:?}: {} heap allocations in {MEASURED_CYCLES} steady-state cycles \
             of an 8×8 mesh with per-cycle ejection drain (gate: exactly 0)",
            after - before
        );
    }
}

#[test]
fn disabled_telemetry_sink_adds_no_allocations() {
    // The zero-overhead claim, pinned: with the sink explicitly Disabled
    // the instrumented hot path (trace hooks in the router and network,
    // matching counters in every allocator, metric hooks in the gated
    // scheduler) must hold the exact same allocation gate as the
    // uninstrumented code did.
    for kind in [AllocatorKind::InputFirst, AllocatorKind::Vix] {
        // `with_profiling(false)` keeps the engine self-profiler covered
        // by the same gate: a disabled profiler is `None` — one branch
        // per span hook, no clock reads, no allocation (DESIGN.md §7).
        let allocs = allocations_in_steady_state(
            kind,
            TelemetrySettings::disabled()
                .with_tracing(false)
                .with_metrics(false)
                .with_profiling(false),
        );
        assert!(
            allocs < 64,
            "{kind:?}: {allocs} heap allocations in 1,000 steady-state cycles \
             with the Disabled telemetry sink (gate unchanged: < 64)"
        );
    }
}

#[test]
fn idle_network_cycles_are_constant_time_and_heap_free() {
    // Zero injection: with activity gating (the default) no router is ever
    // woken, so 10,000 cycles of an idle 8×8 mesh must perform zero router
    // steps — O(1) per-cycle work instead of 64 router visits — and stay
    // off the heap entirely.
    const CYCLES: u64 = 10_000;
    let mut network = NetworkConfig::paper_default(TopologyKind::Mesh, AllocatorKind::Vix);
    network.nodes = 64;
    let cfg = SimConfig::new(network, 0.0).with_windows(CYCLES + 1, 1, 1);
    let mut sim = NetworkSim::build(cfg).expect("valid config");

    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    for _ in 0..CYCLES {
        sim.step();
    }
    let after = ALLOC_CALLS.load(Ordering::Relaxed);

    assert_eq!(sim.router_steps(), 0, "an idle network must never visit a router");
    assert!(
        after - before < 64,
        "{} heap allocations over {CYCLES} idle cycles (gate: < 64)",
        after - before
    );
    // The skipped cycles are still accounted: reported activity matches a
    // sim that really stepped every router every cycle.
    let total = sim.aggregate_activity();
    assert_eq!(total.cycles, CYCLES);
    assert_eq!(total.routers, 64);
    assert_eq!(total.crossbar_traversals, 0);
}
