// Gated: `proptest` comes from crates.io, which offline build
// environments cannot reach. Enable the `proptest` feature (and
// re-add the dev-dependency) to run this suite; see Cargo.toml.
#![cfg(feature = "proptest")]

//! Workspace-level property tests: arbitrary (small) configurations must
//! simulate cleanly and respect conservation invariants.

use proptest::prelude::*;
use vix::prelude::*;

fn allocator_strategy() -> impl Strategy<Value = AllocatorKind> {
    prop_oneof![
        Just(AllocatorKind::InputFirst),
        Just(AllocatorKind::Vix),
        Just(AllocatorKind::Wavefront),
        Just(AllocatorKind::AugmentingPath),
        Just(AllocatorKind::PacketChaining),
        Just(AllocatorKind::Islip(2)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Any sane configuration runs to completion, drains, and conserves
    /// flits.
    #[test]
    fn random_configs_conserve_flits(
        allocator in allocator_strategy(),
        vcs in prop_oneof![Just(2usize), Just(4), Just(6)],
        depth in 2usize..6,
        rate_milli in 5u64..80,
        packet_len in 1usize..5,
        seed in 0u64..1000,
    ) {
        let mut network = NetworkConfig::paper_default(TopologyKind::Mesh, allocator);
        network.nodes = 16;
        network.router = network.router.with_vcs(vcs).with_buffer_depth(depth);
        if allocator == AllocatorKind::Vix {
            network.router = network.router.with_virtual_inputs(vix::VirtualInputs::PerPort(2));
        }
        let rate = (rate_milli as f64 / 1000.0).min(0.9 / packet_len as f64);
        let cfg = SimConfig::new(network, rate)
            .with_packet_len(packet_len)
            .with_windows(100, 600, 1_200)
            .with_seed(seed);
        prop_assume!(cfg.validate().is_ok());

        let mut sim = NetworkSim::build(cfg).expect("validated config");
        for _ in 0..1_900 {
            sim.step();
        }
        prop_assert!(sim.is_drained(), "network failed to drain");
        let a = sim.aggregate_activity();
        prop_assert_eq!(a.buffer_writes, a.buffer_reads, "flit conservation violated");
        prop_assert_eq!(a.crossbar_traversals, a.link_traversals + a.ejections);
    }

    /// Offered and accepted traffic agree at low load for every allocator.
    #[test]
    fn low_load_work_conservation(allocator in allocator_strategy(), seed in 0u64..100) {
        let mut network = NetworkConfig::paper_default(TopologyKind::Mesh, allocator);
        network.nodes = 16;
        let cfg = SimConfig::new(network, 0.02).with_windows(200, 1_500, 1_200).with_seed(seed);
        let stats = NetworkSim::build(cfg).expect("valid").run();
        let offered = stats.offered_packets_per_node_cycle();
        let accepted = stats.accepted_packets_per_node_cycle();
        prop_assume!(offered > 0.0);
        prop_assert!((offered - accepted).abs() / offered < 0.2,
            "{}: offered {offered} accepted {accepted}", allocator.label());
    }
}
