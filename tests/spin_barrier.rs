//! Stress suite for the sharded engine's sense-reversing spin barrier
//! (`vix_sim::barrier`), run by name in CI alongside the parity suites.
//!
//! The unit tests in the module prove the protocol shape; these tests
//! hammer it the way the shard engine does — tens of thousands of
//! reuses, worker counts above the host's core count (forcing the
//! spin→yield downgrade), and a coordinator+workers topology with a
//! mid-flight panic — looking for torn rounds and lost wakeups.

use std::sync::atomic::{AtomicU64, Ordering};
use vix::sim::{SpinBarrier, SpinWaiter};

/// Phased counters: in round `r`, every thread increments `counts[r]`
/// before the barrier and asserts it is full directly after. A single
/// missed sense reversal anywhere in 20 000 rounds shows up as a torn
/// (partial) count.
#[test]
fn sense_reversal_survives_twenty_thousand_rounds() {
    const THREADS: u64 = 4;
    const ROUNDS: usize = 20_000;
    let barrier = SpinBarrier::new(THREADS as usize);
    let counts: Vec<AtomicU64> = (0..ROUNDS).map(|_| AtomicU64::new(0)).collect();
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let (barrier, counts) = (&barrier, &counts);
            scope.spawn(move || {
                let mut w = SpinWaiter::new();
                for cell in counts {
                    cell.fetch_add(1, Ordering::Relaxed);
                    barrier.wait(&mut w).unwrap();
                    assert_eq!(cell.load(Ordering::Relaxed), THREADS, "torn round");
                    barrier.wait(&mut w).unwrap();
                }
            });
        }
    });
}

/// Oversubscription: more participants than this host has cores (CI
/// runners have ≤ 16), so most waits must take the yield path — the
/// regime an over-sharded simulation puts the barrier in. The round
/// phases must still never tear.
#[test]
fn oversubscribed_rounds_never_tear() {
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let threads = (cores * 4).max(8) as u64;
    const ROUNDS: usize = 2_000;
    let barrier = SpinBarrier::new(threads as usize);
    let phase = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let (barrier, phase) = (&barrier, &phase);
            scope.spawn(move || {
                let mut w = SpinWaiter::new();
                for round in 1..=ROUNDS as u64 {
                    phase.fetch_add(1, Ordering::Relaxed);
                    barrier.wait(&mut w).unwrap();
                    // All arrivals of this round happened; none of the
                    // next round's can land before everyone passes the
                    // second barrier below.
                    assert_eq!(phase.load(Ordering::Relaxed), round * threads);
                    barrier.wait(&mut w).unwrap();
                }
            });
        }
    });
    assert_eq!(phase.load(Ordering::Relaxed), ROUNDS as u64 * threads);
}

/// The shard-engine topology: N workers plus a coordinator meeting at
/// one barrier per cycle, with one worker panicking mid-run. Everyone
/// else must unwind promptly via the poison instead of deadlocking —
/// the same path `tests/shard_panic.rs` drives through the full engine.
#[test]
fn coordinator_and_workers_unwind_on_mid_run_panic() {
    const WORKERS: usize = 4;
    const DEATH_ROUND: u64 = 137;
    let barrier = SpinBarrier::new(WORKERS + 1);
    let survivors = AtomicU64::new(0);
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for id in 0..WORKERS as u64 {
            let (barrier, survivors) = (&barrier, &survivors);
            handles.push(scope.spawn(move || {
                let mut w = SpinWaiter::new();
                for round in 0..10_000u64 {
                    if id == 1 && round == DEATH_ROUND {
                        barrier.poison(); // stand-in for the panic guard
                        panic!("worker 1 dies");
                    }
                    if barrier.wait(&mut w).is_err() {
                        survivors.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                    assert!(round <= DEATH_ROUND, "round {round} ran past the poison");
                }
                unreachable!("the poison must end the loop early");
            }));
        }
        // Coordinator loop.
        let mut w = SpinWaiter::new();
        for _ in 0..10_000u64 {
            if barrier.wait(&mut w).is_err() {
                survivors.fetch_add(1, Ordering::Relaxed);
                break;
            }
        }
        let mut panics = 0;
        for h in handles {
            panics += usize::from(h.join().is_err());
        }
        assert_eq!(panics, 1, "exactly one worker must have panicked");
    });
    // Coordinator + the three surviving workers all saw the poison.
    assert_eq!(survivors.load(Ordering::Relaxed), WORKERS as u64);
}
