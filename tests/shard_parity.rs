//! Bit-identity of the sharded single-run engine against the serial
//! path (DESIGN.md §8).
//!
//! `SimConfig::shards` is a pure performance knob: for every shard
//! count, every allocator, and both schedulers (activity-gated and
//! ungated), a sharded run must produce byte-for-byte the statistics,
//! ejection trace, activity counters, and matching record of a serial
//! run. These tests hold the two engines side by side the same way
//! `tests/gating_parity.rs` holds the gated and ungated serial
//! schedulers side by side.

use vix::prelude::*;

/// All eight allocator configurations exercised by the golden traces.
const ALL_ALLOCATORS: [AllocatorKind; 8] = [
    AllocatorKind::InputFirst,
    AllocatorKind::OutputFirst,
    AllocatorKind::Wavefront,
    AllocatorKind::AugmentingPath,
    AllocatorKind::Vix,
    AllocatorKind::WavefrontVix,
    AllocatorKind::PacketChaining,
    AllocatorKind::Islip(2),
];

/// Shard counts the acceptance criteria pin: serial, even splits, and
/// one that does not divide the 16-router mesh evenly.
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn config(kind: AllocatorKind, gating: bool) -> SimConfig {
    let mut network = NetworkConfig::paper_default(TopologyKind::Mesh, kind);
    network.nodes = 16;
    // Congested-but-stable load: buffers fill, credits stall, and
    // routers oscillate between active and quiescent — the regime where
    // a cross-shard ordering bug would surface.
    SimConfig::new(network, 0.06)
        .with_windows(300, 1_200, 500)
        .with_seed(0xD1CE)
        .with_activity_gating(gating)
}

/// FNV-1a over a stream of `u64` words (same construction as the golden
/// grant-trace hashes in `tests/determinism.rs`).
fn fnv1a(h: &mut u64, word: u64) {
    for byte in word.to_le_bytes() {
        *h ^= u64::from(byte);
        *h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
}

/// Runs the full protocol plus an ejection-trace hash folded over
/// chunked `run_cycles` calls, exercising serial↔sharded hand-off.
fn trace_and_stats(cfg: SimConfig) -> (u64, NetworkStats) {
    trace_and_stats_weighted(cfg, None)
}

/// As [`trace_and_stats`], with optional per-router cost weights for the
/// sharded partition.
fn trace_and_stats_weighted(cfg: SimConfig, weights: Option<&[f64]>) -> (u64, NetworkStats) {
    let mut sim = NetworkSim::build(cfg).expect("paper-default configs are valid");
    if let Some(w) = weights {
        sim.set_shard_weights(w);
    }
    let total = cfg.warmup + cfg.measure + cfg.drain;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut at = 0;
    // Uneven chunks so runs start and stop at odd cycle offsets.
    for chunk in [171, 503, 97, 1_229, u64::MAX] {
        let n = chunk.min(total - at);
        sim.run_cycles(n);
        at += n;
        for e in sim.take_ejections() {
            fnv1a(&mut h, e.at.0);
            fnv1a(&mut h, e.packet.id.0);
            fnv1a(&mut h, e.packet.source.0 as u64);
            fnv1a(&mut h, e.packet.dest.0 as u64);
        }
        if at == total {
            break;
        }
    }
    let mut stats = sim.stats().clone();
    stats.set_activity(sim.aggregate_activity());
    stats.set_matching(sim.matching_summary());
    (h, stats)
}

#[test]
fn sharded_runs_match_serial_for_every_allocator_and_shard_count() {
    for kind in ALL_ALLOCATORS {
        for gating in [true, false] {
            let (serial_hash, serial) = trace_and_stats(config(kind, gating));
            for shards in SHARD_COUNTS {
                if shards == 1 {
                    continue;
                }
                let (hash, stats) =
                    trace_and_stats(config(kind, gating).with_shards(shards));
                assert_eq!(
                    hash, serial_hash,
                    "{kind:?} gating={gating} shards={shards}: ejection trace diverged"
                );
                assert_eq!(
                    stats, serial,
                    "{kind:?} gating={gating} shards={shards}: statistics diverged"
                );
            }
        }
    }
}

#[test]
fn sharded_run_protocol_matches_serial_end_to_end() {
    // The plain `run()` protocol (what every experiment binary calls),
    // including activity and matching stamping.
    for kind in [AllocatorKind::Vix, AllocatorKind::Wavefront] {
        let serial = NetworkSim::build(config(kind, true)).unwrap().run();
        for shards in [2, 3, 5, 16] {
            let sharded =
                NetworkSim::build(config(kind, true).with_shards(shards)).unwrap().run();
            assert_eq!(sharded, serial, "{kind:?} shards={shards}");
            assert_eq!(sharded.activity(), serial.activity(), "{kind:?} shards={shards}");
            assert_eq!(sharded.matching(), serial.matching(), "{kind:?} shards={shards}");
        }
    }
}

#[test]
fn serial_stepping_resumes_cleanly_after_a_sharded_stretch() {
    // Lockstep: a sim that ran sharded for a while must continue under
    // serial `step()` with the exact per-cycle ejections of an
    // all-serial twin — the scheduler-state rebuild is what's on trial.
    for gating in [true, false] {
        let cfg = config(AllocatorKind::Vix, gating);
        let mut sharded = NetworkSim::build(cfg.with_shards(4)).unwrap();
        let mut serial = NetworkSim::build(cfg).unwrap();
        sharded.run_cycles(700);
        serial.run_cycles(700);
        assert_eq!(sharded.take_ejections(), serial.take_ejections(), "gating={gating}");
        for cycle in 0..400 {
            sharded.step();
            serial.step();
            assert_eq!(
                sharded.take_ejections(),
                serial.take_ejections(),
                "gating={gating}: diverged {cycle} cycles after the hand-off"
            );
        }
        assert_eq!(sharded.router_steps(), serial.router_steps(), "gating={gating}");
        assert_eq!(
            sharded.per_router_activity(),
            serial.per_router_activity(),
            "gating={gating}"
        );
    }
}

#[test]
fn degenerate_shard_counts_clamp_and_stay_identical() {
    let serial = NetworkSim::build(config(AllocatorKind::Vix, true)).unwrap().run();
    // More shards than routers: clamped to one router per shard.
    let over = NetworkSim::build(config(AllocatorKind::Vix, true).with_shards(1_000)).unwrap();
    assert_eq!(over.effective_shards(), 16, "clamp to the router count");
    assert_eq!(over.run(), serial);
    // shards = 0 resolves to available parallelism, still clamped.
    let auto = NetworkSim::build(config(AllocatorKind::Vix, true).with_shards(0)).unwrap();
    assert!(auto.effective_shards() >= 1);
    assert!(auto.effective_shards() <= 16);
    assert_eq!(auto.run(), serial);
}

#[test]
fn weighted_shard_plans_stay_bit_identical() {
    // Any contiguous partition merges in ascending router order, so
    // skewing the cut points (the `--shard-weights` load-balance knob)
    // must never change a single bit of the results — including across
    // serial↔sharded hand-offs and for cut layouts that leave some
    // shard a single router.
    let (serial_hash, serial) = trace_and_stats(config(AllocatorKind::Vix, true));
    let heavy_front: Vec<f64> = (0..16).map(|r| if r < 4 { 50.0 } else { 1.0 }).collect();
    let heavy_back: Vec<f64> = (0..16).map(|r| if r >= 12 { 9.0 } else { 0.25 }).collect();
    let sawtooth: Vec<f64> = (0..16).map(|r| f64::from(1 + (r * 7) % 5)).collect();
    for weights in [&heavy_front, &heavy_back, &sawtooth] {
        for (shards, gating) in [(2, true), (4, true), (4, false), (8, true)] {
            let (hash, stats) = trace_and_stats_weighted(
                config(AllocatorKind::Vix, gating).with_shards(shards),
                Some(weights),
            );
            assert_eq!(
                hash, serial_hash,
                "weights={weights:?} shards={shards} gating={gating}: trace diverged"
            );
            assert_eq!(
                stats, serial,
                "weights={weights:?} shards={shards} gating={gating}: stats diverged"
            );
        }
    }
}

#[test]
fn telemetry_recording_forces_serial_execution() {
    // Trace-event order is a serial-scheduler artifact, so telemetry
    // runs must fall back to one shard rather than record a different
    // (even if statistically identical) trace.
    let cfg = config(AllocatorKind::Vix, true)
        .with_shards(4)
        .with_telemetry(TelemetrySettings::enabled());
    let sim = NetworkSim::build(cfg).unwrap();
    assert_eq!(sim.effective_shards(), 1);
    let (stats, telemetry) = sim.run_with_telemetry();
    let serial = NetworkSim::build(config(AllocatorKind::Vix, true)).unwrap().run();
    assert_eq!(stats.packets_ejected(), serial.packets_ejected());
    assert!(telemetry.tracing(), "telemetry stayed on");
}

#[test]
fn sharding_is_invariant_on_concentrated_topologies() {
    // CMesh and FlattenedButterfly attach 4 terminals per router and
    // the fbfly has long-range links — more boundary crossings per
    // shard than the mesh.
    for topo in [TopologyKind::CMesh, TopologyKind::FlattenedButterfly] {
        let network = NetworkConfig::paper_default(topo, AllocatorKind::Vix);
        let cfg = SimConfig::new(network, 0.05).with_windows(200, 800, 400).with_seed(42);
        let serial = NetworkSim::build(cfg).unwrap().run();
        for shards in [2, 4, 8] {
            let sharded = NetworkSim::build(cfg.with_shards(shards)).unwrap().run();
            assert_eq!(sharded, serial, "{topo:?} shards={shards}");
        }
    }
}
