//! Fast checks of the paper's quantitative claims that do not need long
//! network runs: circuit delays (Tables 1 and 3), single-router
//! allocation efficiency (Fig. 7), and the energy model (Fig. 11).

use vix::alloc::{build_allocator, build_ideal_allocator};
use vix::delay::{allocator_delay, RouterDesign};
use vix::power::{EnergyBreakdown, EnergyModel};
use vix::prelude::*;
use vix::{ActivityCounters, RouterConfig, VirtualInputs};

#[test]
fn table1_stage_delays_within_five_percent() {
    let paper: [(f64, f64, f64); 6] = [
        (300.0, 280.0, 167.0),
        (300.0, 290.0, 205.0),
        (340.0, 315.0, 205.0),
        (340.0, 330.0, 289.0),
        (360.0, 340.0, 238.0),
        (360.0, 345.0, 359.0),
    ];
    for (design, (va, sa, xbar)) in RouterDesign::table1().into_iter().zip(paper) {
        let d = design.stage_delays();
        for (got, expect, stage) in [(d.va.0, va, "VA"), (d.sa.0, sa, "SA"), (d.crossbar.0, xbar, "Xbar")] {
            assert!(
                (got - expect).abs() / expect < 0.05,
                "{} {stage}: {got:.0} vs paper {expect}",
                design.name
            );
        }
    }
}

#[test]
fn table3_separable_vs_wavefront() {
    let sep = allocator_delay(AllocatorKind::InputFirst, 5, 6, 1).picoseconds().unwrap();
    let wf = allocator_delay(AllocatorKind::Wavefront, 5, 6, 1).picoseconds().unwrap();
    assert!((wf.relative_to(sep) - 0.39).abs() < 0.05, "WF must cost ~39% more than separable");
    assert!(allocator_delay(AllocatorKind::AugmentingPath, 5, 6, 1).picoseconds().is_none());
}

#[test]
fn fig7_single_router_efficiency_ordering() {
    let throughput = |kind: AllocatorKind, radix: usize| {
        let mut router = RouterConfig::paper_default(radix);
        if kind == AllocatorKind::Vix {
            router = router.with_virtual_inputs(VirtualInputs::PerPort(2));
        }
        SingleRouterHarness::new(build_allocator(kind, &router), radix, 6, 1)
            .run(8_000)
            .flits_per_cycle()
    };
    for radix in [5, 8, 10] {
        let fi = throughput(AllocatorKind::InputFirst, radix);
        let vix = throughput(AllocatorKind::Vix, radix);
        let ap = throughput(AllocatorKind::AugmentingPath, radix);
        assert!(vix > fi * 1.20, "radix {radix}: VIX {vix:.2} vs IF {fi:.2}");
        assert!(ap > fi * 1.30, "radix {radix}: AP {ap:.2} vs IF {fi:.2}");

        let ideal_router = RouterConfig::paper_default(radix).with_virtual_inputs(VirtualInputs::Ideal);
        let ideal = SingleRouterHarness::new(build_ideal_allocator(&ideal_router), radix, 6, 1)
            .run(8_000)
            .flits_per_cycle();
        assert!(ideal >= ap * 0.995, "ideal must top AP");
        assert!(vix > 0.84 * ideal, "radix {radix}: VIX must be near ideal (Fig. 7)");
    }
}

#[test]
fn vix_never_slows_the_router_clock() {
    for topo in [TopologyKind::Mesh, TopologyKind::CMesh, TopologyKind::FlattenedButterfly] {
        let base = RouterDesign::paper(topo, false).stage_delays();
        let vix = RouterDesign::paper(topo, true).stage_delays();
        assert_eq!(base.cycle_time(), vix.cycle_time(), "{topo:?}");
        assert!(vix.crossbar_off_critical_path(), "{topo:?}: crossbar became critical");
    }
}

#[test]
fn fig11_vix_energy_premium_is_small() {
    // Identical traffic, only the crossbar span differs.
    let activity = ActivityCounters {
        cycles: 10_000,
        routers: 64,
        buffer_writes: 1_600_000,
        buffer_reads: 1_600_000,
        crossbar_traversals: 1_600_000,
        link_traversals: 1_350_000,
        ejections: 250_000,
        sa_arbitrations: 3_000_000,
        va_arbitrations: 60_000,
        bits_delivered: 250_000 * 128,
    };
    let model = EnergyModel::cmos45();
    let base = EnergyBreakdown::from_activity(&model, &activity, 1.0);
    let vix = EnergyBreakdown::from_activity(&model, &activity, 1.5);
    let premium = vix.total_pj() / base.total_pj() - 1.0;
    assert!((0.015..=0.07).contains(&premium), "VIX energy premium {premium:.3} (paper: ~4%)");
}

#[test]
fn buffer_reduction_claim_holds_at_allocator_level() {
    // §4.6 at the single-router level: a 4-VC VIX router outperforms a
    // 6-VC baseline router.
    let six = SingleRouterHarness::new(
        build_allocator(AllocatorKind::InputFirst, &RouterConfig::new(5, 6, 5)),
        5,
        6,
        9,
    )
    .run(8_000)
    .flits_per_cycle();
    let four_vix = SingleRouterHarness::new(
        build_allocator(
            AllocatorKind::Vix,
            &RouterConfig::new(5, 4, 5).with_virtual_inputs(VirtualInputs::PerPort(2)),
        ),
        5,
        4,
        9,
    )
    .run(8_000)
    .flits_per_cycle();
    assert!(four_vix > six * 1.05, "4-VC VIX {four_vix:.2} vs 6-VC IF {six:.2}");
}
