//! End-to-end integration tests: full network simulations spanning every
//! crate in the workspace.

use vix::prelude::*;
use vix::ActivityCounters;

fn run(
    topology: TopologyKind,
    allocator: AllocatorKind,
    rate: f64,
    seed: u64,
) -> vix::sim::NetworkStats {
    let network = NetworkConfig::paper_default(topology, allocator);
    let cfg = SimConfig::new(network, rate).with_windows(500, 2_000, 1_500).with_seed(seed);
    NetworkSim::build(cfg).expect("paper-default configs are valid").run()
}

#[test]
fn every_allocator_delivers_on_every_topology() {
    for topology in [TopologyKind::Mesh, TopologyKind::CMesh, TopologyKind::FlattenedButterfly] {
        for allocator in [
            AllocatorKind::InputFirst,
            AllocatorKind::Vix,
            AllocatorKind::Wavefront,
            AllocatorKind::WavefrontVix,
            AllocatorKind::AugmentingPath,
            AllocatorKind::PacketChaining,
            AllocatorKind::Islip(2),
        ] {
            let stats = run(topology, allocator, 0.02, 1);
            let offered = stats.offered_packets_per_node_cycle();
            let accepted = stats.accepted_packets_per_node_cycle();
            assert!(
                (offered - accepted).abs() / offered < 0.15,
                "{allocator:?} on {topology:?}: offered {offered} vs accepted {accepted}"
            );
        }
    }
}

#[test]
fn flit_conservation_holds_network_wide() {
    for allocator in [AllocatorKind::InputFirst, AllocatorKind::Vix] {
        let network = NetworkConfig::paper_default(TopologyKind::Mesh, allocator);
        let cfg = SimConfig::new(network, 0.05).with_windows(500, 2_000, 2_000);
        let mut sim = NetworkSim::build(cfg).unwrap();
        for _ in 0..4_500 {
            sim.step();
        }
        assert!(sim.is_drained(), "{allocator:?}: flits left in the network after drain");
        let a: ActivityCounters = sim.aggregate_activity();
        assert_eq!(a.buffer_writes, a.buffer_reads, "every buffered flit must leave");
        assert_eq!(a.crossbar_traversals, a.link_traversals + a.ejections);
    }
}

#[test]
fn vix_beats_baseline_at_saturation() {
    // The paper's headline (Fig. 8): double-digit throughput gain at
    // saturation on the mesh.
    let base = run(TopologyKind::Mesh, AllocatorKind::InputFirst, 0.12, 2);
    let vix = run(TopologyKind::Mesh, AllocatorKind::Vix, 0.12, 2);
    let gain = vix.accepted_packets_per_node_cycle() / base.accepted_packets_per_node_cycle();
    assert!(gain > 1.08, "VIX gain at saturation only {gain:.3}");
    assert!(
        vix.avg_packet_latency() < base.avg_packet_latency(),
        "VIX must also reduce latency at high load"
    );
}

#[test]
fn vix_gains_on_higher_radix_topologies_too() {
    // §4.6: the benefit holds for CMesh and FBfly.
    for topology in [TopologyKind::CMesh, TopologyKind::FlattenedButterfly] {
        let base = run(topology, AllocatorKind::InputFirst, 0.16, 3);
        let vix = run(topology, AllocatorKind::Vix, 0.16, 3);
        let gain = vix.accepted_packets_per_node_cycle() / base.accepted_packets_per_node_cycle();
        assert!(gain > 1.04, "{topology:?}: VIX gain {gain:.3}");
    }
}

#[test]
fn augmenting_path_is_unfair_at_saturation() {
    // Fig. 9: greedy maximum matching starves nodes; VIX does not.
    let ap = run(TopologyKind::Mesh, AllocatorKind::AugmentingPath, 0.12, 4);
    let vix = run(TopologyKind::Mesh, AllocatorKind::Vix, 0.12, 4);
    assert!(
        ap.fairness_ratio() > 2.0 * vix.fairness_ratio(),
        "AP {:.2} vs VIX {:.2}",
        ap.fairness_ratio(),
        vix.fairness_ratio()
    );
}

#[test]
fn low_load_latency_is_allocator_independent() {
    // §4.3: "at low network load all the allocation schemes have nearly
    // identical performance."
    let lats: Vec<f64> = [
        AllocatorKind::InputFirst,
        AllocatorKind::Vix,
        AllocatorKind::Wavefront,
        AllocatorKind::AugmentingPath,
    ]
    .into_iter()
    .map(|a| run(TopologyKind::Mesh, a, 0.01, 5).avg_packet_latency())
    .collect();
    let min = lats.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = lats.iter().cloned().fold(0.0, f64::max);
    assert!(max / min < 1.05, "low-load latencies diverge: {lats:?}");
}

#[test]
fn adversarial_patterns_run_clean() {
    use vix::traffic::TrafficPattern;
    for pattern in [
        TrafficPattern::Transpose,
        TrafficPattern::BitComplement,
        TrafficPattern::BitReverse,
        TrafficPattern::Hotspot { spots: vec![vix::NodeId(0), vix::NodeId(63)], fraction: 0.3 },
    ] {
        let network = NetworkConfig::paper_default(TopologyKind::Mesh, AllocatorKind::Vix);
        let cfg = SimConfig::new(network, 0.03).with_windows(500, 1_500, 1_500);
        let stats = NetworkSim::build_with_pattern(cfg, pattern.clone()).unwrap().run();
        assert!(stats.packets_ejected() > 0, "{} moved nothing", pattern.label());
    }
}
