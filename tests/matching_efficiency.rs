//! Acceptance test for the matching-efficiency instrumentation (paper §4).
//!
//! Runs the 8×8 mesh at saturation under IF and VIX with tracing enabled
//! and checks that
//!
//! - the per-cycle matching efficiency reported by the allocator
//!   instrumentation is strictly higher for VIX than for IF — the paper's
//!   central claim, now measurable from a standard run, and
//! - the Chrome trace emitted by the same run validates as JSON.

use vix::prelude::*;
use vix::telemetry::json::{self, JsonValue};

/// Offered load past both allocators' saturation points (IF ≈ 0.100,
/// VIX ≈ 0.1175 pkt/node/cycle on the 8×8 mesh).
const SATURATION_RATE: f64 = 0.13;

fn saturated_run(kind: AllocatorKind) -> (NetworkStats, TelemetrySink) {
    let mut network = NetworkConfig::paper_default(TopologyKind::Mesh, kind);
    network.nodes = 64; // 8×8 mesh
    let telemetry = TelemetrySettings::disabled()
        .with_tracing(true)
        .with_trace_capacity(1 << 16);
    let cfg = SimConfig::new(network, SATURATION_RATE)
        .with_windows(500, 1_500, 500)
        .with_telemetry(telemetry);
    NetworkSim::build(cfg).expect("valid config").run_with_telemetry()
}

#[test]
fn vix_matching_efficiency_beats_if_at_saturation() {
    let (if_stats, _) = saturated_run(AllocatorKind::InputFirst);
    let (vix_stats, vix_tel) = saturated_run(AllocatorKind::Vix);

    let if_m = if_stats.matching();
    let vix_m = vix_stats.matching();
    assert!(if_m.cycles > 0 && vix_m.cycles > 0, "saturated runs must allocate");
    assert!(
        vix_m.efficiency() > if_m.efficiency(),
        "VIX matching efficiency ({:.4} = {}/{}) must beat IF ({:.4} = {}/{}) at saturation",
        vix_m.efficiency(),
        vix_m.grants,
        vix_m.match_bound,
        if_m.efficiency(),
        if_m.grants,
        if_m.match_bound,
    );

    // The same run's Chrome trace must validate as JSON end to end.
    let mut out = Vec::new();
    vix_tel.trace_ring().write_chrome_trace(&mut out).expect("write to Vec cannot fail");
    let text = String::from_utf8(out).expect("Chrome trace output is UTF-8");
    let doc = json::parse(&text).expect("Chrome trace must be well-formed JSON");
    let events = doc
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .expect("top-level `traceEvents` array");
    assert!(!events.is_empty(), "a saturated run must export trace events");
}
