//! Lockstep parity between the activity-gated and ungated network
//! schedulers.
//!
//! The gated scheduler (`SimConfig::activity_gating`, on by default) is a
//! pure performance optimisation: it may only skip work whose result is
//! provably a no-op. These tests hold the two paths side by side — same
//! config, same seed — for 2,000 cycles across every allocator and assert
//! that the ejection trace (hashed FNV-1a, the network-level analogue of
//! the golden grant traces in `tests/determinism.rs`), the measurement
//! statistics, the activity counters, and the derived energy are all
//! bit-identical.

use vix::power::{EnergyBreakdown, EnergyModel};
use vix::prelude::*;

/// FNV-1a over a stream of `u64` words (same construction as the golden
/// grant-trace hashes in `tests/determinism.rs`).
fn fnv1a(h: &mut u64, word: u64) {
    for byte in word.to_le_bytes() {
        *h ^= u64::from(byte);
        *h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
}

/// All eight allocator configurations exercised by the golden traces.
const ALL_ALLOCATORS: [AllocatorKind; 8] = [
    AllocatorKind::InputFirst,
    AllocatorKind::OutputFirst,
    AllocatorKind::Wavefront,
    AllocatorKind::AugmentingPath,
    AllocatorKind::Vix,
    AllocatorKind::WavefrontVix,
    AllocatorKind::PacketChaining,
    AllocatorKind::Islip(2),
];

fn build(kind: AllocatorKind, gated: bool) -> NetworkSim {
    let mut network = NetworkConfig::paper_default(TopologyKind::Mesh, kind);
    network.nodes = 16;
    // Rate in the congested-but-stable band so buffers fill, credits
    // stall, speculation fails, and routers oscillate between active and
    // quiescent — the regime where a gating bug would surface.
    let cfg = SimConfig::new(network, 0.06)
        .with_windows(300, 1_200, 500)
        .with_seed(0xD1CE)
        .with_activity_gating(gated);
    NetworkSim::build(cfg).expect("paper-default configs are valid")
}

/// Steps `sim` for 2,000 cycles, folding every ejected packet (cycle,
/// id, source, dest, tag) into an FNV-1a trace hash.
fn ejection_trace_hash(sim: &mut NetworkSim) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for cycle in 0..2_000u64 {
        sim.step();
        for e in sim.take_ejections() {
            fnv1a(&mut h, cycle);
            fnv1a(&mut h, e.packet.id.0);
            fnv1a(&mut h, e.packet.source.0 as u64);
            fnv1a(&mut h, e.packet.dest.0 as u64);
            fnv1a(&mut h, e.at.0);
        }
    }
    h
}

#[test]
fn gated_and_ungated_traces_match_for_every_allocator() {
    for kind in ALL_ALLOCATORS {
        let mut gated = build(kind, true);
        let mut ungated = build(kind, false);
        assert_eq!(
            ejection_trace_hash(&mut gated),
            ejection_trace_hash(&mut ungated),
            "{kind:?}: ejection trace diverged between gated and ungated runs"
        );
        // End-of-run state, not just the trace: measurement statistics,
        // per-router and aggregate activity, and the hotspot map.
        let (gs, us) = (gated.stats(), ungated.stats());
        assert_eq!(gs.packets_ejected(), us.packets_ejected(), "{kind:?}");
        assert_eq!(gs.flits_ejected(), us.flits_ejected(), "{kind:?}");
        assert_eq!(gs.per_source_packets(), us.per_source_packets(), "{kind:?}");
        assert_eq!(gs.avg_packet_latency(), us.avg_packet_latency(), "{kind:?}");
        assert_eq!(
            gated.per_router_activity(),
            ungated.per_router_activity(),
            "{kind:?}: per-router activity diverged"
        );
        assert_eq!(gated.aggregate_activity(), ungated.aggregate_activity(), "{kind:?}");
        assert_eq!(gated.utilization_map(), ungated.utilization_map(), "{kind:?}");
    }
}

#[test]
fn full_run_protocol_matches_for_every_allocator() {
    // `run()` (warmup + measure + drain, stats stamped with aggregate
    // activity) is what every experiment binary calls.
    for kind in ALL_ALLOCATORS {
        let mut network = NetworkConfig::paper_default(TopologyKind::Mesh, kind);
        network.nodes = 16;
        let cfg = SimConfig::new(network, 0.05).with_windows(200, 800, 400).with_seed(7);
        let gated = NetworkSim::build(cfg.with_activity_gating(true)).unwrap().run();
        let ungated = NetworkSim::build(cfg.with_activity_gating(false)).unwrap().run();
        assert_eq!(gated.packets_ejected(), ungated.packets_ejected(), "{kind:?}");
        assert_eq!(gated.avg_packet_latency(), ungated.avg_packet_latency(), "{kind:?}");
        assert_eq!(gated.activity(), ungated.activity(), "{kind:?}: activity diverged");
        // Matching records skip empty allocation cycles by construction, so
        // the gated scheduler (which never even calls the allocator on an
        // empty cycle) must report identical counters.
        assert_eq!(gated.matching(), ungated.matching(), "{kind:?}: matching diverged");
    }
}

#[test]
fn gated_and_ungated_runs_report_identical_energy() {
    // The power model multiplies `routers × cycles` for clock and leakage
    // energy, so any idle-cycle under-counting by the gated scheduler (or
    // double-counting through `ActivityCounters::merge`) would surface
    // here as an energy delta.
    let model = EnergyModel::cmos45();
    for kind in [AllocatorKind::InputFirst, AllocatorKind::Vix] {
        let mut network = NetworkConfig::paper_default(TopologyKind::Mesh, kind);
        network.nodes = 16;
        let cfg = SimConfig::new(network, 0.04).with_windows(200, 800, 400).with_seed(3);
        let span = EnergyModel::span_factor(&cfg.network.router);
        let energy = |gating: bool| {
            let stats = NetworkSim::build(cfg.with_activity_gating(gating)).unwrap().run();
            EnergyBreakdown::from_activity(&model, stats.activity(), span)
        };
        let (gated, ungated) = (energy(true), energy(false));
        assert_eq!(gated.total_pj(), ungated.total_pj(), "{kind:?}: total energy diverged");
        assert_eq!(
            gated.energy_per_bit(),
            ungated.energy_per_bit(),
            "{kind:?}: energy/bit diverged"
        );
        for ((name, g), (_, u)) in gated.components().iter().zip(ungated.components().iter()) {
            assert_eq!(g, u, "{kind:?}: {name} energy diverged");
        }
    }
}
