//! Physical-design view: combine the cycle-accurate simulation with the
//! circuit delay and energy models to report *wall-clock* performance and
//! power — the cross-model workflow behind Tables 1/3 and Fig. 11.
//!
//! Run with: `cargo run --release --example energy_and_delay`

use vix::delay::RouterDesign;
use vix::power::{EnergyBreakdown, EnergyModel};
use vix::prelude::*;

fn main() -> Result<(), ConfigError> {
    println!("8x8 mesh @ 0.1 pkt/cycle/node, baseline vs VIX, through all three models:\n");

    for (label, allocator, vix_on) in
        [("baseline (IF)", AllocatorKind::InputFirst, false), ("1:2 VIX", AllocatorKind::Vix, true)]
    {
        // 1. Cycle-accurate simulation.
        let network = NetworkConfig::paper_default(TopologyKind::Mesh, allocator);
        let cfg = SimConfig::new(network, 0.10).with_windows(2_000, 10_000, 3_000);
        let stats = NetworkSim::build(cfg)?.run();

        // 2. Circuit delay: cycles → nanoseconds at the modelled clock.
        let design = RouterDesign::paper(TopologyKind::Mesh, vix_on);
        let cycle_ps = design.stage_delays().cycle_time();
        let latency_ns = stats.avg_packet_latency() * cycle_ps.0 / 1000.0;

        // 3. Energy: activity counters → pJ/bit.
        let span = EnergyModel::span_factor(&network.router);
        let energy = EnergyBreakdown::from_activity(&EnergyModel::cmos45(), stats.activity(), span);

        println!("{label}:");
        println!("  cycle time        {cycle_ps}  (crossbar at {:.0}% of cycle)",
            100.0 * design.stage_delays().crossbar.0 / cycle_ps.0);
        println!("  packet latency    {:.1} cycles = {:.1} ns", stats.avg_packet_latency(), latency_ns);
        println!("  accepted          {:.4} pkt/node/cycle", stats.accepted_packets_per_node_cycle());
        println!(
            "  energy            {:.3} pJ/bit (crossbar share {:.1}%)",
            energy.energy_per_bit().expect("traffic flowed"),
            100.0 * energy.crossbar_pj / energy.total_pj()
        );
        println!();
    }

    println!("Same clock, same traffic: VIX converts crossbar slack into throughput and");
    println!("lower latency for a few percent of energy — the paper's overall bargain.");
    Ok(())
}
