//! Application-level run (§4.7): a 64-core CMP executing one of the
//! paper's multiprogrammed mixes over the simulated NoC, baseline vs VIX.
//!
//! Run with: `cargo run --release --example manycore_workload [mix-index]`

use vix::manycore::{ManycoreSystem, Mix};
use vix::AllocatorKind;

fn main() {
    let index: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(4);
    let mixes = Mix::table4();
    let mix = mixes.get(index.saturating_sub(1).min(7)).unwrap_or(&mixes[4]);

    println!("{}: 6 applications x ~11 instances on 64 cores (avg MPKI {:.1})", mix.name, mix.avg_mpki());
    for (bench, n) in &mix.apps {
        println!("  {bench} x {n}");
    }

    println!("\nsimulating 15k cycles per configuration...");
    let base = ManycoreSystem::build(mix, AllocatorKind::InputFirst, 5).run_windows(3_000, 15_000);
    let vix = ManycoreSystem::build(mix, AllocatorKind::Vix, 5).run_windows(3_000, 15_000);

    println!("\n{:<22} {:>10} {:>10}", "", "IF", "VIX");
    println!("{:<22} {:>10.1} {:>10.1}", "system IPC", base.total_ipc(), vix.total_ipc());
    println!("{:<22} {:>10.3} {:>10.3}", "avg per-core IPC", base.avg_ipc(), vix.avg_ipc());
    println!("{:<22} {:>10.3} {:>10.3}", "L2 miss ratio", base.l2_miss_ratio, vix.l2_miss_ratio);
    println!("{:<22} {:>10} {:>10}", "memory requests", base.memory_requests, vix.memory_requests);
    println!(
        "\nspeedup: {:.3} (paper reports {:.2} for {})",
        vix.total_ipc() / base.total_ipc(),
        mix.paper_speedup,
        mix.name
    );
}
