//! Topology tour: run the same VIX-vs-baseline comparison on all three of
//! the paper's 64-terminal topologies — mesh, concentrated mesh, and
//! flattened butterfly — and check the pipeline-delay feasibility argument
//! for each radix (§2.4, Table 1).
//!
//! Run with: `cargo run --release --example topology_tour`

use vix::delay::RouterDesign;
use vix::prelude::*;

fn main() -> Result<(), ConfigError> {
    for topology in [TopologyKind::Mesh, TopologyKind::CMesh, TopologyKind::FlattenedButterfly] {
        println!("== {topology:?} (radix {}) ==", topology.radix_64());

        // Circuit feasibility first: would VIX stretch this router's cycle?
        let base = RouterDesign::paper(topology, false).stage_delays();
        let vix = RouterDesign::paper(topology, true).stage_delays();
        println!(
            "  cycle time {} -> {} with VIX; crossbar {} -> {} ({} and {} of cycle)",
            base.cycle_time(),
            vix.cycle_time(),
            base.crossbar,
            vix.crossbar,
            format_args!("{:.0}%", 100.0 * base.crossbar.0 / base.cycle_time().0),
            format_args!("{:.0}%", 100.0 * vix.crossbar.0 / vix.cycle_time().0),
        );

        // Then performance: saturation throughput with and without VIX.
        let mut best = [0.0f64; 2];
        for (i, allocator) in [AllocatorKind::InputFirst, AllocatorKind::Vix].into_iter().enumerate() {
            for step in 1..=8 {
                let rate = 0.25 * step as f64 / 8.0;
                let network = NetworkConfig::paper_default(topology, allocator);
                let cfg = SimConfig::new(network, rate).with_windows(1_500, 6_000, 2_000);
                let stats = NetworkSim::build(cfg)?.run();
                best[i] = best[i].max(stats.accepted_packets_per_node_cycle());
            }
        }
        println!(
            "  saturation: IF {:.4} -> VIX {:.4} pkt/node/cycle ({:+.1}%)\n",
            best[0],
            best[1],
            (best[1] / best[0] - 1.0) * 100.0
        );
    }
    println!("paper: VIX gains ~16% (mesh), ~15% (CMesh), ~17% (FBfly) without touching cycle time.");
    Ok(())
}
