//! Buffer reduction (§4.6): VIX's throughput headroom can be spent on
//! *fewer buffers* instead — a 4-VC VIX router beats a 6-VC baseline
//! router while carrying 33% less buffer storage.
//!
//! Run with: `cargo run --release --example buffer_reduction`

use vix::prelude::*;
use vix::{RouterConfig, VirtualInputs};

/// Saturation throughput for a mesh with the given router.
fn saturation(router: RouterConfig, allocator: AllocatorKind) -> Result<f64, ConfigError> {
    let mut best: f64 = 0.0;
    for step in 1..=8 {
        let rate = 0.25 * step as f64 / 8.0;
        let mut network = NetworkConfig::paper_default(TopologyKind::Mesh, allocator);
        network.router = router;
        let cfg = SimConfig::new(network, rate).with_windows(1_500, 6_000, 2_000);
        let stats = NetworkSim::build(cfg)?.run();
        best = best.max(stats.accepted_packets_per_node_cycle());
    }
    Ok(best)
}

fn main() -> Result<(), ConfigError> {
    println!("Buffer reduction study, 8x8 mesh (5-flit buffers per VC):\n");

    let six_vc_base = saturation(RouterConfig::new(5, 6, 5), AllocatorKind::InputFirst)?;
    let four_vc_base = saturation(RouterConfig::new(5, 4, 5), AllocatorKind::InputFirst)?;
    let four_vc_vix = saturation(
        RouterConfig::new(5, 4, 5).with_virtual_inputs(VirtualInputs::PerPort(2)),
        AllocatorKind::Vix,
    )?;

    println!("  6 VCs, no VIX   (30 flit-buffers/port): {six_vc_base:.4} pkt/node/cycle");
    println!("  4 VCs, no VIX   (20 flit-buffers/port): {four_vc_base:.4} pkt/node/cycle");
    println!("  4 VCs, 1:2 VIX  (20 flit-buffers/port): {four_vc_vix:.4} pkt/node/cycle");
    println!();
    println!(
        "  4-VC VIX vs 6-VC baseline: {:+.1}% throughput with 33% fewer buffers",
        (four_vc_vix / six_vc_base - 1.0) * 100.0
    );
    println!("  paper: VIX cuts buffers 33% while still improving throughput ~10% (§4.6).");
    Ok(())
}
