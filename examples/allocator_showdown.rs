//! Allocator showdown: every switch-allocation scheme in the crate, on
//! both harness levels the paper uses — a single saturated router (Fig. 7)
//! and the full 64-node mesh (Figs. 8–10) — plus the circuit-delay story
//! (Table 3) that motivates VIX in the first place.
//!
//! Run with: `cargo run --release --example allocator_showdown`

use vix::alloc::{build_allocator, build_ideal_allocator};
use vix::delay::allocator_delay;
use vix::prelude::*;
use vix::{RouterConfig, VirtualInputs};

fn main() -> Result<(), ConfigError> {
    let kinds = [
        AllocatorKind::InputFirst,
        AllocatorKind::Wavefront,
        AllocatorKind::AugmentingPath,
        AllocatorKind::PacketChaining,
        AllocatorKind::Islip(2),
        AllocatorKind::Vix,
    ];

    // --- Level 1: a single saturated radix-5 router (Fig. 7's setup).
    println!("single saturated radix-5 router, 6 VCs (flits/cycle; max 5):\n");
    for kind in kinds {
        let mut router = RouterConfig::paper_default(5);
        if kind == AllocatorKind::Vix {
            router = router.with_virtual_inputs(VirtualInputs::PerPort(2));
        }
        let mut harness = SingleRouterHarness::new(build_allocator(kind, &router), 5, 6, 7);
        let flits = harness.run(10_000).flits_per_cycle();
        let delay = allocator_delay(kind, 5, 6, router.virtual_inputs_per_port());
        println!("  {:<6} {:>5.2} flits/cycle   circuit: {}", kind.label(), flits, delay);
    }
    let ideal_router = RouterConfig::paper_default(5).with_virtual_inputs(VirtualInputs::Ideal);
    let mut ideal = SingleRouterHarness::new(build_ideal_allocator(&ideal_router), 5, 6, 7);
    println!("  {:<6} {:>5.2} flits/cycle   circuit: n/a (upper bound)", "Ideal", ideal.run(10_000).flits_per_cycle());

    // --- Level 2: the full 64-node mesh at high load.
    println!("\n64-node mesh at 0.11 pkt/cycle/node (near saturation):\n");
    for kind in kinds {
        let network = NetworkConfig::paper_default(TopologyKind::Mesh, kind);
        let cfg = SimConfig::new(network, 0.11).with_windows(1_500, 6_000, 2_000);
        let stats = NetworkSim::build(cfg)?.run();
        println!(
            "  {:<6} accepted {:.4} pkt/n/c   latency {:>6.1}   fairness max/min {:>5.2}",
            kind.label(),
            stats.accepted_packets_per_node_cycle(),
            stats.avg_packet_latency(),
            stats.fairness_ratio()
        );
    }

    println!();
    println!("The paper's punchline reproduces: schemes that win inside one router");
    println!("(AP's maximum matching) can lose at the network level to fairness, while");
    println!("VIX wins both levels at separable-allocator circuit cost.");
    Ok(())
}
