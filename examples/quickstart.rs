//! Quickstart: simulate an 8×8 mesh NoC with the baseline and VIX switch
//! allocators and compare latency and throughput.
//!
//! Run with: `cargo run --release --example quickstart`

use vix::prelude::*;

fn main() -> Result<(), ConfigError> {
    println!("VIX quickstart: 8x8 mesh, uniform random traffic, 4-flit packets\n");

    // Sweep a few injection rates for the two allocators the paper leads
    // with: the input-first separable baseline ("IF") and VIX.
    println!("{:>22} | {:>10} | {:>14} | {:>14}", "allocator", "rate", "latency (cyc)", "accepted pkt/n/c");
    for allocator in [AllocatorKind::InputFirst, AllocatorKind::Vix] {
        for rate in [0.02, 0.06, 0.10] {
            // `paper_default` builds the paper's router: 6 VCs per port,
            // 5-flit buffers, 128-bit datapath — and, for VIX, two
            // virtual inputs per port.
            let network = NetworkConfig::paper_default(TopologyKind::Mesh, allocator);
            let cfg = SimConfig::new(network, rate).with_windows(1_000, 5_000, 2_000);
            let stats = NetworkSim::build(cfg)?.run();
            println!(
                "{:>22} | {:>10.2} | {:>14.1} | {:>14.4}",
                allocator.label(),
                rate,
                stats.avg_packet_latency(),
                stats.accepted_packets_per_node_cycle()
            );
        }
    }

    println!();
    println!("At low load the allocators are indistinguishable; near saturation VIX");
    println!("keeps latency flat where the separable baseline's queues blow up (Fig. 8).");
    Ok(())
}
